package sim

import (
	"fmt"
	"math"
	"sort"

	"flowsched/internal/core"
	"flowsched/internal/eventq"
	"flowsched/internal/faults"
	"flowsched/internal/obs"
	"flowsched/internal/overload"
)

// OverloadMetrics extends FaultMetrics with the overload-control observables
// of a guarded run. The disposition slices are nil when the run had no
// overload config (RunGuarded with nil cfg, or the RunFaulty wrappers):
// every task was admitted and the struct carries exactly FaultMetrics.
type OverloadMetrics struct {
	FaultMetrics
	// Rejected marks tasks the admission policy turned away at arrival; they
	// were never dispatched, carry Flow 0 and are unassigned (Machine −1).
	Rejected []bool
	// Shed marks tasks dropped mid-run by the shedder or the deadline
	// enforcement; their Flow measures release → shed instant.
	Shed []bool
	// Reason records, per rejected or shed task, the rule that fired
	// (overload.ReasonQueueBound, overload.ReasonDeadline, "shed-oldest", …).
	Reason []string
	// Ejections / Readmissions count outlier-ejector transitions.
	Ejections    int
	Readmissions int
	// Brownouts counts rising edges of the SLO guard's brownout signal.
	Brownouts int
}

// RejectedCount returns the number of admission-rejected tasks.
func (m *OverloadMetrics) RejectedCount() int { return countTrue(m.Rejected) }

// ShedCount returns the number of tasks shed mid-run.
func (m *OverloadMetrics) ShedCount() int { return countTrue(m.Shed) }

// excluded reports whether task i never (finally) completed: rejected, shed
// or dropped by the retry policy.
func (m *OverloadMetrics) excluded(i int) bool {
	if m.Dropped[i] {
		return true
	}
	if m.Rejected != nil && m.Rejected[i] {
		return true
	}
	if m.Shed != nil && m.Shed[i] {
		return true
	}
	return false
}

// CompletedCount returns the number of tasks that finally completed.
func (m *OverloadMetrics) CompletedCount() int {
	n := len(m.Flows)
	return n - m.DroppedCount() - m.RejectedCount() - m.ShedCount()
}

// Goodput returns the fraction of offered tasks that completed.
func (m *OverloadMetrics) Goodput() float64 {
	if len(m.Flows) == 0 {
		return 0
	}
	return float64(m.CompletedCount()) / float64(len(m.Flows))
}

// AdmittedMaxFlow returns Fmax over completed tasks only — the bound the
// admission policy actually promises (rejected/shed/dropped tasks are
// accounted through Goodput, not flow).
func (m *OverloadMetrics) AdmittedMaxFlow() core.Time {
	var mx core.Time
	for i, f := range m.Flows {
		if !m.excluded(i) && f > mx {
			mx = f
		}
	}
	return mx
}

// AdmittedMaxStretch returns the maximum stretch over completed tasks.
func (m *OverloadMetrics) AdmittedMaxStretch() core.Time {
	var mx core.Time
	for i, s := range m.Stretches {
		if !m.excluded(i) && s > mx {
			mx = s
		}
	}
	return mx
}

// AdmittedFlows returns a fresh slice of the completed tasks' flow times
// (for quantile summaries).
func (m *OverloadMetrics) AdmittedFlows() []core.Time {
	out := make([]core.Time, 0, len(m.Flows))
	for i, f := range m.Flows {
		if !m.excluded(i) {
			out = append(out, f)
		}
	}
	return out
}

// ReasonCounts aggregates the rejected/shed tasks by reason, sorted by name
// via Reasons.
func (m *OverloadMetrics) ReasonCounts() map[string]int {
	if m.Reason == nil {
		return nil
	}
	counts := make(map[string]int)
	for _, r := range m.Reason {
		if r != "" {
			counts[r]++
		}
	}
	return counts
}

// Reasons returns the distinct reject/shed reasons, sorted.
func (m *OverloadMetrics) Reasons() []string {
	counts := m.ReasonCounts()
	names := make([]string, 0, len(counts))
	for r := range counts {
		names = append(names, r)
	}
	sort.Strings(names)
	return names
}

// ovRun is the engine-side runtime of an overload config: the live view
// handed to admission policies, the cached Budgeted bound, the optional
// observer side of the probe, and scratch space for shedding. It exists
// only when a config is present, so the disabled path allocates nothing.
type ovRun struct {
	cfg    *overload.Config
	view   overload.View
	op     obs.OverloadObserver
	budget core.Time
	brown  bool
	cands  []overload.Candidate
	ejBuf  core.ProcSet
}

// RunGuarded is the guarded superset of RunFaulty: the same fault-replaying,
// failover-routing simulation with the overload-control subsystem attached.
// cfg selects the controls (see overload.Config); a nil cfg is byte-identical
// to RunFaulty — identical schedules and metrics, with nil disposition
// slices — asserted by TestRunGuardedNilEquivalence and alloc-pinned by
// TestRunGuardedNilAllocs.
//
// With a config:
//
//   - cfg.Admission is consulted once per arrival (after shedding, so it
//     sees trimmed queues); rejected tasks are never dispatched.
//   - cfg.Shedder trims any machine whose oldest queued task is older than
//     the watermark, in policy order, down to the target backlog. The
//     running request is never shed (non-preemptive execution).
//   - cfg.Ejector observes every final completion and temporarily ejects
//     servers whose service-time EWMA is an outlier; dispatch prefers
//     non-ejected live replicas but falls back to the live set when the
//     whole set is ejected (ejection alone never parks work).
//   - cfg.Guard tracks offered load and raises the brownout signal.
//   - If cfg.Admission implements overload.Budgeted (DeadlineAdmit does),
//     the budget is enforced at every dispatch: an attempt that would
//     complete with flow > Budget + proc is shed instead, so every
//     completed task satisfies Fmax ≤ Budget + p_max (the auditor's
//     "deadline" invariant).
func RunGuarded(inst *core.Instance, router Router, plan *faults.Plan, policy RetryPolicy, cfg *overload.Config, probe obs.Probe) (*core.Schedule, *OverloadMetrics, error) {
	if err := inst.Validate(); err != nil {
		return nil, nil, fmt.Errorf("sim: %w", err)
	}
	if plan == nil {
		plan = faults.Empty(inst.M)
	}
	if err := plan.Validate(); err != nil {
		return nil, nil, fmt.Errorf("sim: %w", err)
	}
	if plan.M != inst.M {
		return nil, nil, fmt.Errorf("sim: fault plan for %d servers, instance has %d", plan.M, inst.M)
	}
	if err := cfg.Validate(inst.M); err != nil {
		return nil, nil, fmt.Errorf("sim: %w", err)
	}
	plan = plan.Normalize()
	if r, ok := router.(Resettable); ok {
		r.Reset()
	}

	m := inst.M
	n := inst.N()
	st := &State{
		M:          m,
		Completion: make([]core.Time, m),
		QueueLen:   make([]int, m),
	}
	sched := core.NewSchedule(inst)
	metrics := &OverloadMetrics{
		FaultMetrics: FaultMetrics{
			Metrics: Metrics{
				Flows:     make([]core.Time, n),
				Stretches: make([]core.Time, n),
				Busy:      make([]core.Time, m),
			},
			Attempts: make([]int, n),
			Dropped:  make([]bool, n),
			Parked:   make([]bool, n),
			plan:     plan,
			releases: make([]core.Time, n),
		},
	}
	for i, t := range inst.Tasks {
		metrics.releases[i] = t.Release
	}

	live := make([]bool, m)
	for j := range live {
		live[j] = true
	}
	// slow holds each server's effective gray-failure segments; nil when the
	// plan has none, so the healthy dispatch arithmetic below is untouched
	// (and all-factor-1 segments were dropped by Normalize above).
	var slow [][]faults.Slowdown
	if len(plan.Slowdowns) > 0 {
		slow = plan.ServerSlowdowns()
	}
	downCount := 0
	pending := make([][]int, m)      // per-server FIFO of unfinished request IDs
	gen := make([]int, n)            // attempt generation, invalidates stale completions
	curStart := make([]core.Time, n) // start of the current attempt
	curEnd := make([]core.Time, n)   // end of the current attempt
	busyAdd := make([]core.Time, n)  // busy time credited for the current attempt
	var parked []int                 // requests waiting for any replica to recover
	var completions eventq.Queue[compEvent]
	var events eventq.Queue[faultEvent]
	completions.Reserve(reserveFor(n))
	events.Reserve(2 * len(plan.Outages))
	for _, o := range plan.Outages {
		events.Push(o.From, faultEvent{kind: evDown, server: o.Server})
		events.Push(o.Until, faultEvent{kind: evUp, server: o.Server})
	}

	// Everything overload-control hangs off ov; ov == nil is the disabled
	// path and must stay byte-identical to RunFaulty (and allocation-free
	// relative to it), so every use below sits behind an ov != nil guard.
	var ov *ovRun
	if cfg != nil {
		cfg.Reset(m)
		ov = &ovRun{cfg: cfg}
		metrics.Rejected = make([]bool, n)
		metrics.Shed = make([]bool, n)
		metrics.Reason = make([]string, n)
		ov.view = overload.View{M: m, Completion: st.Completion, QueueLen: st.QueueLen, Live: live}
		if cfg.Ejector != nil {
			ov.view.Ejected = cfg.Ejector.EjectedVec()
			ov.ejBuf = make(core.ProcSet, 0, m)
		}
		if b, ok := cfg.Admission.(overload.Budgeted); ok {
			ov.budget = b.Budget()
		}
		ov.op, _ = probe.(obs.OverloadObserver)
		if cfg.Shedder.Enabled() {
			ov.cands = make([]overload.Candidate, 0, 16)
		}
	}

	drain := func(upTo core.Time) {
		for completions.Len() > 0 {
			when, c := completions.Peek()
			if when > upTo {
				return
			}
			completions.Pop()
			if c.gen != gen[c.task] {
				continue // stale: that attempt was aborted
			}
			if probe != nil {
				t := inst.Tasks[c.task]
				probe.OnComplete(c.task, c.server, t.Release, t.Proc, when)
			}
			st.QueueLen[c.server]--
			q := pending[c.server]
			if len(q) > 0 && q[0] == c.task {
				pending[c.server] = q[1:]
			} else { // defensive; FIFO service should make this unreachable
				for x, id := range q {
					if id == c.task {
						pending[c.server] = append(q[:x:x], q[x+1:]...)
						break
					}
				}
			}
			if ov != nil && ov.cfg.Ejector != nil {
				if proc := inst.Tasks[c.task].Proc; proc > 0 {
					factor := float64((when - curStart[c.task]) / proc)
					if ov.cfg.Ejector.Observe(c.server, factor, when) {
						metrics.Ejections++
						if ov.op != nil {
							ov.op.OnEject(c.server, when)
						}
					}
				}
			}
		}
	}

	drop := func(id int, now core.Time) {
		metrics.Dropped[id] = true
		metrics.Flows[id] = now - inst.Tasks[id].Release
		metrics.Stretches[id] = stretchOf(metrics.Flows[id], inst.Tasks[id].Proc)
		sched.Assign(id, -1, math.NaN())
		if probe != nil {
			probe.OnDrop(id, inst.Tasks[id].Release, now)
		}
	}

	// shed records the overload disposition of request id abandoned at now;
	// queue surgery (for watermark trims) happens at the call sites.
	shed := func(id, server int, now core.Time, reason string) {
		metrics.Shed[id] = true
		metrics.Reason[id] = reason
		metrics.Flows[id] = now - inst.Tasks[id].Release
		metrics.Stretches[id] = stretchOf(metrics.Flows[id], inst.Tasks[id].Proc)
		sched.Assign(id, -1, math.NaN())
		if ov.op != nil {
			ov.op.OnShed(id, server, inst.Tasks[id].Release, now, reason)
		}
	}

	reject := func(id int, now core.Time, reason string) {
		metrics.Rejected[id] = true
		metrics.Reason[id] = reason
		sched.Assign(id, -1, math.NaN())
		if ov.op != nil {
			ov.op.OnReject(id, now, reason)
		}
	}

	// liveBuf is reused across dispatches: the live view handed to the
	// router is only read within the Pick call, never retained.
	liveBuf := make(core.ProcSet, 0, m)
	liveSubset := func(set core.ProcSet) core.ProcSet {
		out := liveBuf[:0]
		if set == nil {
			for j := 0; j < m; j++ {
				if live[j] {
					out = append(out, j)
				}
			}
		} else {
			for _, j := range set {
				if live[j] {
					out = append(out, j)
				}
			}
		}
		return out
	}

	// dispatch routes request id at instant now (its release, a failover
	// instant, or a recovery instant). The arithmetic mirrors Run exactly
	// so an empty plan reproduces it bit for bit.
	dispatch := func(id int, now core.Time) error {
		task := inst.Tasks[id]
		view := task
		ejecting := false
		if ov != nil && ov.cfg.Ejector != nil {
			ov.cfg.Ejector.Readmit(now, func(j int) {
				metrics.Readmissions++
				if ov.op != nil {
					ov.op.OnReadmit(j, now)
				}
			})
			ejecting = ov.cfg.Ejector.NumEjected() > 0
		}
		if downCount > 0 || ejecting {
			eff := liveSubset(task.Set)
			if len(eff) == 0 {
				metrics.Parked[id] = true
				parked = append(parked, id)
				return nil
			}
			if ejecting {
				// Prefer non-ejected live replicas; if the whole live set is
				// ejected, fall back to it — ejection is advisory and never
				// parks work on its own.
				keep := ov.ejBuf[:0]
				for _, j := range eff {
					if !ov.view.Ejected[j] {
						keep = append(keep, j)
					}
				}
				if len(keep) > 0 {
					eff = keep
				}
			}
			view.Set = eff
		}
		view.Release = now // failover re-dispatches cannot start before now
		j := router.Pick(st, view)
		if j < 0 || j >= m || !view.Eligible(j) {
			return fmt.Errorf("sim: router %s picked invalid server M%d for task %d (live set %v)",
				router.Name(), j+1, id, view.Set)
		}
		if !live[j] {
			return fmt.Errorf("sim: router %s picked dead server M%d for task %d at t=%v",
				router.Name(), j+1, id, now)
		}
		start := st.Completion[j]
		if now > start {
			start = now
		}
		end := start + task.Proc
		busy := task.Proc
		if slow != nil && len(slow[j]) > 0 {
			// Gray failure: work on j advances at rate 1/Factor inside its
			// slowdown segments, so the attempt occupies [start, end) with
			// end from the piecewise integration, and all of it is busy time.
			end = faults.FinishTime(slow[j], start, task.Proc)
			busy = end - start
		}
		if ov != nil && ov.budget > 0 && end-task.Release > ov.budget+task.Proc {
			// Deadline enforcement: this attempt would already blow the
			// admitted-task budget, so completing it is pointless — shed
			// before committing any server time.
			shed(id, j, now, overload.ReasonDeadline)
			return nil
		}
		metrics.Attempts[id]++
		st.Completion[j] = end
		st.QueueLen[j]++
		completions.Push(end, compEvent{server: j, task: id, gen: gen[id]})
		pending[j] = append(pending[j], id)
		curStart[id], curEnd[id] = start, end
		busyAdd[id] = busy
		sched.Assign(id, j, start)
		metrics.Flows[id] = end - task.Release
		metrics.Stretches[id] = stretchOf(end-task.Release, task.Proc)
		metrics.Busy[j] += busy
		if probe != nil {
			probe.OnDispatch(id, j, now, start, end)
		}
		return nil
	}

	// requeue decides the fate of request id aborted at instant now.
	requeue := func(id int, now core.Time) {
		if policy.MaxAttempts > 0 && metrics.Attempts[id] >= policy.MaxAttempts {
			drop(id, now)
			return
		}
		next := now + policy.delay(metrics.Attempts[id])
		if policy.Timeout > 0 && next-inst.Tasks[id].Release > policy.Timeout {
			drop(id, now)
			return
		}
		events.Push(next, faultEvent{kind: evRetry, task: id})
		if probe != nil {
			probe.OnRetry(id, metrics.Attempts[id], now)
		}
	}

	fail := func(j int, now core.Time) {
		live[j] = false
		downCount++
		lost := pending[j]
		pending[j] = nil
		st.QueueLen[j] -= len(lost)
		st.Completion[j] = now
		if probe != nil {
			probe.OnFailover(j, now, len(lost))
		}
		for _, id := range lost {
			gen[id]++ // invalidate the queued completion
			executed := core.Time(0)
			if curStart[id] < now {
				executed = now - curStart[id] // the running request's wasted partial work
			}
			metrics.Busy[j] -= busyAdd[id] - executed
			requeue(id, now)
		}
	}

	restore := func(j int, now core.Time) error {
		live[j] = true
		downCount--
		still := parked[:0]
		var wake []int
		for _, id := range parked {
			if inst.Tasks[id].Eligible(j) {
				wake = append(wake, id)
			} else {
				still = append(still, id)
			}
		}
		parked = still
		for _, id := range wake {
			if policy.Timeout > 0 && now-inst.Tasks[id].Release > policy.Timeout {
				drop(id, now)
				continue
			}
			if err := dispatch(id, now); err != nil {
				return err
			}
		}
		return nil
	}

	// trim sheds queued work from server j at instant now: victims are
	// ranked by the shed policy and dropped until the backlog is at most the
	// target, then the surviving suffix is re-timed in place. The running
	// head (curStart ≤ now) is never shed.
	trim := func(j int, now core.Time) {
		sh := ov.cfg.Shedder
		q := pending[j]
		i0 := 0
		if len(q) > 0 && curStart[q[0]] <= now {
			i0 = 1
		}
		if len(q) <= i0 {
			return
		}
		backlog := st.Completion[j] - now
		target := sh.EffectiveTarget()
		if backlog <= target {
			return
		}
		cands := ov.cands[:0]
		for pos, id := range q[i0:] {
			cands = append(cands, overload.Candidate{
				ID: id, Release: inst.Tasks[id].Release, Proc: inst.Tasks[id].Proc, Pos: pos,
			})
		}
		ov.cands = cands
		sh.Rank(now, cands)
		dropped := 0
		reason := sh.Policy.Reason()
		for _, c := range cands {
			if backlog <= target {
				break
			}
			backlog -= busyAdd[c.ID]
			gen[c.ID]++ // invalidate the queued completion
			st.QueueLen[j]--
			metrics.Busy[j] -= busyAdd[c.ID]
			shed(c.ID, j, now, reason)
			dropped++
		}
		if dropped == 0 {
			return
		}
		// Compact the queue (preserving FIFO order of survivors) and re-time
		// the unstarted suffix back to back.
		w := i0
		for _, id := range q[i0:] {
			if !metrics.Shed[id] {
				q[w] = id
				w++
			}
		}
		q = q[:w]
		pending[j] = q
		cur := now
		if i0 == 1 {
			cur = curEnd[q[0]]
		}
		for _, id := range q[i0:] {
			task := inst.Tasks[id]
			start := cur
			end := start + task.Proc
			busy := task.Proc
			if slow != nil && len(slow[j]) > 0 {
				end = faults.FinishTime(slow[j], start, task.Proc)
				busy = end - start
			}
			gen[id]++
			completions.Push(end, compEvent{server: j, task: id, gen: gen[id]})
			metrics.Busy[j] += busy - busyAdd[id]
			curStart[id], curEnd[id] = start, end
			busyAdd[id] = busy
			sched.Assign(id, j, start)
			metrics.Flows[id] = end - task.Release
			metrics.Stretches[id] = stretchOf(end-task.Release, task.Proc)
			cur = end
		}
		st.Completion[j] = cur
	}

	// arrive runs the per-arrival overload controls, in order: offered-load
	// tracking (brownout edge detection), watermark shedding (so admission
	// sees trimmed queues), then admission. It reports whether the task was
	// rejected.
	arrive := func(id int, task core.Task) bool {
		if g := ov.cfg.Guard; g != nil {
			g.Observe(task.Release, task.Key)
			if b := g.Brownout(); b != ov.brown {
				ov.brown = b
				if b {
					metrics.Brownouts++
				}
				if ov.op != nil {
					ov.op.OnBrownout(task.Release, b)
				}
			}
		}
		if sh := ov.cfg.Shedder; sh.Enabled() {
			for j := 0; j < m; j++ {
				q := pending[j]
				if len(q) == 0 {
					continue
				}
				if task.Release-inst.Tasks[q[0]].Release > sh.Watermark {
					trim(j, task.Release)
				}
			}
		}
		if ap := ov.cfg.Admission; ap != nil {
			ov.view.Now = task.Release
			if ok, reason := ap.Admit(&ov.view, task); !ok {
				reject(id, task.Release, reason)
				return true
			}
		}
		return false
	}

	next := 0 // next arrival index
	for next < n || events.Len() > 0 {
		if events.Len() > 0 {
			when, _ := events.Peek()
			if next >= n || when <= inst.Tasks[next].Release {
				when, ev := events.Pop()
				st.Now = when
				drain(when)
				switch ev.kind {
				case evDown:
					fail(ev.server, when)
				case evUp:
					if err := restore(ev.server, when); err != nil {
						return nil, nil, err
					}
				case evRetry:
					if err := dispatch(ev.task, when); err != nil {
						return nil, nil, err
					}
				}
				continue
			}
		}
		task := inst.Tasks[next]
		st.Now = task.Release
		drain(st.Now)
		if probe != nil {
			probe.OnArrival(next, task.Release)
		}
		if ov != nil && arrive(next, task) {
			next++
			continue
		}
		if err := dispatch(next, task.Release); err != nil {
			return nil, nil, err
		}
		next++
	}

	for id := 0; id < n; id++ {
		if metrics.Dropped[id] {
			continue
		}
		if ov != nil && (metrics.Rejected[id] || metrics.Shed[id]) {
			continue
		}
		if curEnd[id] > metrics.Makespan {
			metrics.Makespan = curEnd[id]
		}
	}
	drain(metrics.Makespan)
	metrics.Horizon = metrics.Makespan
	if end := plan.End(); end > metrics.Horizon {
		metrics.Horizon = end
	}
	metrics.Downtime = plan.Downtime(metrics.Horizon)
	if probe != nil {
		probe.OnDone(metrics.Makespan)
	}
	return sched, metrics, nil
}
