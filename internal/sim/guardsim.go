package sim

import (
	"sort"

	"flowsched/internal/core"
	"flowsched/internal/faults"
	"flowsched/internal/obs"
	"flowsched/internal/overload"
)

// OverloadMetrics extends FaultMetrics with the overload-control observables
// of a guarded run. The disposition slices are nil when the run had no
// overload config (RunGuarded with nil cfg, or the RunFaulty wrappers):
// every task was admitted and the struct carries exactly FaultMetrics.
type OverloadMetrics struct {
	FaultMetrics
	// Rejected marks tasks the admission policy turned away at arrival; they
	// were never dispatched, carry Flow 0 and are unassigned (Machine −1).
	Rejected []bool
	// Shed marks tasks dropped mid-run by the shedder or the deadline
	// enforcement; their Flow measures release → shed instant.
	Shed []bool
	// Reason records, per rejected or shed task, the rule that fired
	// (overload.ReasonQueueBound, overload.ReasonDeadline, "shed-oldest", …).
	Reason []string
	// Ejections / Readmissions count outlier-ejector transitions.
	Ejections    int
	Readmissions int
	// Brownouts counts rising edges of the SLO guard's brownout signal.
	Brownouts int
}

// RejectedCount returns the number of admission-rejected tasks.
func (m *OverloadMetrics) RejectedCount() int { return countTrue(m.Rejected) }

// ShedCount returns the number of tasks shed mid-run.
func (m *OverloadMetrics) ShedCount() int { return countTrue(m.Shed) }

// excluded reports whether task i never (finally) completed: rejected, shed
// or dropped by the retry policy.
func (m *OverloadMetrics) excluded(i int) bool {
	if m.Dropped[i] {
		return true
	}
	if m.Rejected != nil && m.Rejected[i] {
		return true
	}
	if m.Shed != nil && m.Shed[i] {
		return true
	}
	return false
}

// CompletedCount returns the number of tasks that finally completed.
func (m *OverloadMetrics) CompletedCount() int {
	n := len(m.Flows)
	return n - m.DroppedCount() - m.RejectedCount() - m.ShedCount()
}

// Goodput returns the fraction of offered tasks that completed.
func (m *OverloadMetrics) Goodput() float64 {
	if len(m.Flows) == 0 {
		return 0
	}
	return float64(m.CompletedCount()) / float64(len(m.Flows))
}

// AdmittedMaxFlow returns Fmax over completed tasks only — the bound the
// admission policy actually promises (rejected/shed/dropped tasks are
// accounted through Goodput, not flow).
func (m *OverloadMetrics) AdmittedMaxFlow() core.Time {
	var mx core.Time
	for i, f := range m.Flows {
		if !m.excluded(i) && f > mx {
			mx = f
		}
	}
	return mx
}

// AdmittedMaxStretch returns the maximum stretch over completed tasks.
func (m *OverloadMetrics) AdmittedMaxStretch() core.Time {
	var mx core.Time
	for i, s := range m.Stretches {
		if !m.excluded(i) && s > mx {
			mx = s
		}
	}
	return mx
}

// AdmittedFlows returns a fresh slice of the completed tasks' flow times
// (for quantile summaries).
func (m *OverloadMetrics) AdmittedFlows() []core.Time {
	out := make([]core.Time, 0, len(m.Flows))
	for i, f := range m.Flows {
		if !m.excluded(i) {
			out = append(out, f)
		}
	}
	return out
}

// ReasonCounts aggregates the rejected/shed tasks by reason, sorted by name
// via Reasons.
func (m *OverloadMetrics) ReasonCounts() map[string]int {
	if m.Reason == nil {
		return nil
	}
	counts := make(map[string]int)
	for _, r := range m.Reason {
		if r != "" {
			counts[r]++
		}
	}
	return counts
}

// Reasons returns the distinct reject/shed reasons, sorted.
func (m *OverloadMetrics) Reasons() []string {
	counts := m.ReasonCounts()
	names := make([]string, 0, len(counts))
	for r := range counts {
		names = append(names, r)
	}
	sort.Strings(names)
	return names
}

// ovRun is the engine-side runtime of an overload config: the live view
// handed to admission policies, the cached Budgeted bound, the optional
// observer side of the probe, and scratch space for shedding. It exists
// only when a config is present, so the disabled path allocates nothing.
type ovRun struct {
	cfg        *overload.Config
	view       overload.View
	op         obs.OverloadObserver
	budget     core.Time
	brown      bool
	cands      []overload.Candidate
	ejBuf      core.ProcSet
	shedReason string // Policy.Reason(), cached once per run (it concatenates)
}

// RunGuarded is the guarded superset of RunFaulty: the same fault-replaying,
// failover-routing simulation with the overload-control subsystem attached.
// cfg selects the controls (see overload.Config); a nil cfg is byte-identical
// to RunFaulty — identical schedules and metrics, with nil disposition
// slices — asserted by TestRunGuardedNilEquivalence and alloc-pinned by
// TestRunGuardedNilAllocs.
//
// With a config:
//
//   - cfg.Admission is consulted once per arrival (after shedding, so it
//     sees trimmed queues); rejected tasks are never dispatched.
//   - cfg.Shedder trims any machine whose oldest queued task is older than
//     the watermark, in policy order, down to the target backlog. The
//     running request is never shed (non-preemptive execution).
//   - cfg.Ejector observes every final completion and temporarily ejects
//     servers whose service-time EWMA is an outlier; dispatch prefers
//     non-ejected live replicas but falls back to the live set when the
//     whole set is ejected (ejection alone never parks work).
//   - cfg.Guard tracks offered load and raises the brownout signal.
//   - If cfg.Admission implements overload.Budgeted (DeadlineAdmit does),
//     the budget is enforced at every dispatch: an attempt that would
//     complete with flow > Budget + proc is shed instead, so every
//     completed task satisfies Fmax ≤ Budget + p_max (the auditor's
//     "deadline" invariant).
//
// RunGuarded delegates to RunElastic (elasticsim.go) with a nil elastic
// config: the engine lives there and the disabled-membership path is
// byte-identical by construction (and property-tested).
func RunGuarded(inst *core.Instance, router Router, plan *faults.Plan, policy RetryPolicy, cfg *overload.Config, probe obs.Probe) (*core.Schedule, *OverloadMetrics, error) {
	return NewArena().RunGuarded(inst, router, plan, policy, cfg, probe)
}

// RunGuarded is the package-level RunGuarded running in the reusable arena:
// the returned schedule and metrics point into the arena and are valid until
// its next run.
func (a *Arena) RunGuarded(inst *core.Instance, router Router, plan *faults.Plan, policy RetryPolicy, cfg *overload.Config, probe obs.Probe) (*core.Schedule, *OverloadMetrics, error) {
	s, em, err := a.RunElastic(inst, router, plan, policy, cfg, nil, probe)
	if err != nil {
		return nil, nil, err
	}
	return s, &em.OverloadMetrics, nil
}
