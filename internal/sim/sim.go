// Package sim is the key-value store substrate: a discrete-event simulation
// of a cluster of servers with FIFO local queues and an immediate-dispatch
// router, as used in the experiments of Section 7.4. Requests are the tasks
// of a core.Instance; the router assigns each arriving request to an
// eligible server at its release instant (scalable stores cannot hold
// central queues — the Immediate Dispatch property of Section 3), and each
// server serves its local queue in arrival order.
//
// The engine processes arrival and completion events in time order
// (completions before arrivals at equal instants) and collects per-request
// flow times plus per-server utilization.
package sim

import (
	"fmt"

	"flowsched/internal/core"
	"flowsched/internal/eventq"
	"flowsched/internal/obs"
	"flowsched/internal/sched"
	"flowsched/internal/stats"
)

// State is the router-visible cluster state at an arrival instant.
type State struct {
	Now        core.Time
	M          int
	Completion []core.Time // per-server time at which its queue drains
	QueueLen   []int       // per-server number of unfinished requests

	scratch []int // reusable candidate buffer, see Candidates
}

// Candidates returns an empty reusable buffer with capacity for at least
// max(M, setLen) server indices. Routers build per-request candidate sets in
// it instead of allocating; the returned slice (and anything appended to it
// within capacity) is only valid until the next Pick on the same State —
// the scratch-buffer contract documented in DESIGN.md §7. Callers that grow
// the buffer should hand it back via keepScratch so the growth is kept.
func (st *State) Candidates(setLen int) []int {
	need := st.M
	if setLen > need {
		need = setLen
	}
	if cap(st.scratch) < need {
		st.scratch = make([]int, 0, need)
	}
	return st.scratch[:0]
}

// keepScratch retains a (possibly re-grown) candidate buffer for reuse.
func (st *State) keepScratch(buf []int) { st.scratch = buf[:0] }

// Router decides, immediately at arrival, which eligible server runs a
// request.
type Router interface {
	Name() string
	Pick(st *State, t core.Task) int
}

// Resettable is implemented by stateful routers (round-robin cursor, noisy
// EFT beliefs). Run and RunFaulty reset such routers at the start of every
// run, so one router value can be reused across runs safely.
type Resettable interface {
	Reset()
}

// Metrics aggregates a simulation run.
type Metrics struct {
	Flows     []core.Time // per-request flow time, indexed by task ID
	Stretches []core.Time // per-request stretch F_i / p_i
	Busy      []core.Time // per-server total busy time
	Makespan  core.Time
}

// MaxFlow returns the maximum response time of the run.
func (m *Metrics) MaxFlow() core.Time { return stats.Max(m.Flows) }

// MeanFlow returns the mean response time of the run.
func (m *Metrics) MeanFlow() core.Time { return stats.Mean(m.Flows) }

// FlowQuantile returns the q-quantile of response times.
func (m *Metrics) FlowQuantile(q float64) core.Time { return stats.Quantile(m.Flows, q) }

// MaxStretch returns max_i F_i / p_i.
func (m *Metrics) MaxStretch() core.Time { return stats.Max(m.Stretches) }

// MeanStretch returns the mean stretch.
func (m *Metrics) MeanStretch() core.Time { return stats.Mean(m.Stretches) }

// SteadyStateMaxFlow returns the maximum flow among requests after the
// warm-up prefix (skip ∈ [0,1) as a fraction of the run). The paper's
// protocol relies on 10 000 tasks being "sufficient to reach a steady
// state"; this lets callers check that claim (see TestSteadyState).
func (m *Metrics) SteadyStateMaxFlow(skip float64) core.Time {
	if skip < 0 {
		skip = 0
	}
	if skip >= 1 {
		return 0
	}
	from := int(skip * float64(len(m.Flows)))
	return stats.Max(m.Flows[from:])
}

// Utilization returns the average fraction of time servers were busy, over
// the horizon [0, Makespan].
func (m *Metrics) Utilization() float64 {
	if m.Makespan <= 0 || len(m.Busy) == 0 {
		return 0
	}
	total := 0.0
	for _, b := range m.Busy {
		total += b
	}
	return total / (m.Makespan * core.Time(len(m.Busy)))
}

// stretchOf returns flow/proc, the stretch of a request. Zero-proc tasks
// (e.g. trace-derived writes) have undefined stretch; it is reported as 0
// instead of poisoning MeanStretch with ±Inf/NaN.
func stretchOf(flow, proc core.Time) core.Time {
	if proc <= 0 {
		return 0
	}
	return flow / proc
}

// Run simulates the instance under the router and returns the resulting
// schedule (validated against the model invariants by tests) and metrics.
//
// Full-set instances routed by EFT-Min skip the O(m) completion scan
// entirely: dispatch goes through an eventq.EFTMinPicker in O(log m) per
// request, producing a byte-identical schedule (property-tested against the
// scan path by TestEFTMinFastPathEquivalence and FuzzRouterEquivalence).
func Run(inst *core.Instance, router Router) (*core.Schedule, *Metrics, error) {
	return RunProbed(inst, router, nil)
}

// RunProbed is Run with an observability probe attached: the probe receives
// OnArrival/OnDispatch/OnComplete for every request plus a final OnDone
// (see obs.Probe for the event-time contract — completions are reported
// eagerly at dispatch, where they become final in the fault-free model).
// A nil probe is exactly Run: every hook sits behind a nil guard, so the
// unobserved hot path stays allocation-free (TestProbeNilRunAllocs, the
// ProbeOverheadSim benchreg pair).
func RunProbed(inst *core.Instance, router Router, probe obs.Probe) (*core.Schedule, *Metrics, error) {
	if err := inst.Validate(); err != nil {
		return nil, nil, fmt.Errorf("sim: %w", err)
	}
	if r, ok := router.(Resettable); ok {
		r.Reset()
	}
	m := inst.M
	sched := core.NewSchedule(inst)
	metrics := &Metrics{
		Flows:     make([]core.Time, inst.N()),
		Stretches: make([]core.Time, inst.N()),
		Busy:      make([]core.Time, m),
	}
	if isEFTMin(router) && unrestricted(inst) {
		runEFTMinFast(inst, sched, metrics, probe)
		return sched, metrics, nil
	}
	st := &State{
		M:          m,
		Completion: make([]core.Time, m),
		QueueLen:   make([]int, m),
	}

	// Completion events decrement queue lengths; they are drained up to each
	// arrival instant before the router runs, so same-instant completions
	// are visible to the router (completion-before-arrival ordering).
	var completions eventq.Queue[int] // payload: server index
	completions.Reserve(reserveFor(inst.N()))

	drain := func(upTo core.Time) {
		for completions.Len() > 0 {
			when, _ := completions.Peek()
			if when > upTo {
				return
			}
			_, server := completions.Pop()
			st.QueueLen[server]--
		}
	}

	for i, task := range inst.Tasks {
		st.Now = task.Release
		drain(st.Now)
		if probe != nil {
			probe.OnArrival(i, task.Release)
		}
		j := router.Pick(st, task)
		if j < 0 || j >= m || !task.Eligible(j) {
			if task.Set != nil && len(task.Set) == 0 {
				return nil, nil, fmt.Errorf("sim: task %d has an empty processing set: no eligible server", i)
			}
			return nil, nil, fmt.Errorf("sim: router %s picked invalid server M%d for task %d (set %v)",
				router.Name(), j+1, i, task.Set)
		}
		start := st.Completion[j]
		if task.Release > start {
			start = task.Release
		}
		end := start + task.Proc
		st.Completion[j] = end
		st.QueueLen[j]++
		completions.Push(end, j)
		sched.Assign(i, j, start)
		metrics.Flows[i] = end - task.Release
		metrics.Stretches[i] = stretchOf(end-task.Release, task.Proc)
		metrics.Busy[j] += task.Proc
		if end > metrics.Makespan {
			metrics.Makespan = end
		}
		if probe != nil {
			probe.OnDispatch(i, j, task.Release, start, end)
			probe.OnComplete(i, j, task.Release, task.Proc, end)
		}
	}
	drain(metrics.Makespan)
	if probe != nil {
		probe.OnDone(metrics.Makespan)
	}
	return sched, metrics, nil
}

// reserveFor sizes the completion queue's initial capacity: enough that
// small and mid-sized runs never reallocate, without reserving O(n) memory
// for multi-million-request instances (the heap then grows amortized).
func reserveFor(n int) int {
	const max = 4096
	if n < max {
		return n
	}
	return max
}

// isEFTMin reports whether the router is the EFT router with the Min
// tie-break (explicitly or by default), the combination with a dedicated
// O(log m) dispatch structure.
func isEFTMin(router Router) bool {
	r, ok := router.(EFTRouter)
	if !ok {
		return false
	}
	if r.Tie == nil {
		return true
	}
	_, isMin := r.Tie.(sched.MinTie)
	return isMin
}

// unrestricted reports whether every task may run on every server.
func unrestricted(inst *core.Instance) bool {
	for _, t := range inst.Tasks {
		if t.Set != nil {
			return false
		}
	}
	return true
}

// runEFTMinFast is the O(n log m) dispatch loop for full-set instances under
// EFT-Min. Queue lengths are irrelevant (EFT never reads them), so the
// completion event queue is skipped entirely; the schedule and metrics are
// byte-identical to the generic loop's. Probe hooks fire exactly as in the
// generic loop, behind the same nil guard.
func runEFTMinFast(inst *core.Instance, sched *core.Schedule, metrics *Metrics, probe obs.Probe) {
	picker := eventq.NewEFTMinPicker(inst.M)
	for i, task := range inst.Tasks {
		if probe != nil {
			probe.OnArrival(i, task.Release)
		}
		j, start := picker.Dispatch(task.Release, task.Proc)
		end := start + task.Proc
		sched.Assign(i, j, start)
		metrics.Flows[i] = end - task.Release
		metrics.Stretches[i] = stretchOf(end-task.Release, task.Proc)
		metrics.Busy[j] += task.Proc
		if end > metrics.Makespan {
			metrics.Makespan = end
		}
		if probe != nil {
			probe.OnDispatch(i, j, task.Release, start, end)
			probe.OnComplete(i, j, task.Release, task.Proc, end)
		}
	}
	if probe != nil {
		probe.OnDone(metrics.Makespan)
	}
}
