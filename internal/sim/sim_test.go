package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flowsched/internal/core"
	"flowsched/internal/popularity"
	"flowsched/internal/replicate"
	"flowsched/internal/sched"
	"flowsched/internal/workload"
)

func genInstance(seed int64, m, n int, k int) *core.Instance {
	rng := rand.New(rand.NewSource(seed))
	w := popularity.Weights(popularity.Shuffled, m, 1, rng)
	inst, err := workload.Generate(workload.Config{
		M: m, N: n, Rate: 0.8 * float64(m),
		Weights:  w,
		Strategy: replicate.Overlapping{K: k},
	}, rng)
	if err != nil {
		panic(err)
	}
	return inst
}

func TestRunMatchesSchedEFT(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 3 + rng.Intn(8)
		k := 2 + rng.Intn(m-1)
		inst := genInstance(seed, m, 200, k)
		for _, tie := range []sched.TieBreak{sched.MinTie{}, sched.MaxTie{}} {
			simSched, metrics, err := Run(inst, EFTRouter{Tie: tie})
			if err != nil {
				return false
			}
			if simSched.Validate() != nil {
				return false
			}
			ref, err := sched.NewEFT(tie).Run(inst)
			if err != nil {
				return false
			}
			for i := range inst.Tasks {
				if simSched.Machine[i] != ref.Machine[i] || simSched.Start[i] != ref.Start[i] {
					return false
				}
			}
			if math.Abs(metrics.MaxFlow()-ref.MaxFlow()) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsBasics(t *testing.T) {
	inst := core.NewInstance(2, []core.Task{
		{Release: 0, Proc: 2},
		{Release: 0, Proc: 2},
		{Release: 1, Proc: 2},
	})
	_, m, err := Run(inst, EFTRouter{})
	if err != nil {
		t.Fatal(err)
	}
	// T0→M1@0, T1→M2@0, T2→M1@2: flows 2, 2, 3.
	if m.MaxFlow() != 3 {
		t.Fatalf("MaxFlow = %v", m.MaxFlow())
	}
	if math.Abs(m.MeanFlow()-7.0/3) > 1e-12 {
		t.Fatalf("MeanFlow = %v", m.MeanFlow())
	}
	if m.Makespan != 4 {
		t.Fatalf("Makespan = %v", m.Makespan)
	}
	// Busy: M1 4 units, M2 2 units; utilization = 6 / (4·2) = 0.75.
	if math.Abs(m.Utilization()-0.75) > 1e-12 {
		t.Fatalf("Utilization = %v", m.Utilization())
	}
	if q := m.FlowQuantile(1); q != 3 {
		t.Fatalf("p100 = %v", q)
	}
}

func TestJSQRouterRespectsSets(t *testing.T) {
	prop := func(seed int64) bool {
		inst := genInstance(seed, 6, 150, 3)
		s, _, err := Run(inst, JSQRouter{})
		return err == nil && s.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomRouterRespectsSets(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inst := genInstance(9, 6, 200, 3)
	s, _, err := Run(inst, &RandomRouter{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestEFTBeatsRandomUnderLoad sanity-checks the router hierarchy: under a
// steady load, the clairvoyant EFT router yields no worse a max response
// time than blind random routing.
func TestEFTBeatsRandomUnderLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	inst := genInstance(10, 9, 3000, 3)
	_, eft, err := Run(inst, EFTRouter{})
	if err != nil {
		t.Fatal(err)
	}
	_, rnd, err := Run(inst, &RandomRouter{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if eft.MaxFlow() > rnd.MaxFlow() {
		t.Fatalf("EFT Fmax %v worse than Random %v", eft.MaxFlow(), rnd.MaxFlow())
	}
}

// badRouter picks an ineligible server to exercise the engine's guard.
type badRouter struct{}

func (badRouter) Name() string                    { return "bad" }
func (badRouter) Pick(st *State, t core.Task) int { return st.M - 1 }

func TestRunRejectsBadRouter(t *testing.T) {
	inst := core.NewInstance(3, []core.Task{{Release: 0, Proc: 1, Set: core.NewProcSet(0)}})
	if _, _, err := Run(inst, badRouter{}); err == nil {
		t.Fatal("expected eligibility error")
	}
}

func TestRunRejectsInvalidInstance(t *testing.T) {
	inst := &core.Instance{M: 0}
	if _, _, err := Run(inst, EFTRouter{}); err == nil {
		t.Fatal("expected validation error")
	}
}

// TestCompletionVisibleToJSQ pins the completion-before-arrival ordering:
// a request arriving exactly when a server drains must see that server
// empty.
func TestCompletionVisibleToJSQ(t *testing.T) {
	// M1 busy [0,1) with one task; M2 busy [0,2). At t=1 a new task
	// arrives: JSQ must see M1's queue at 0 and pick it.
	inst := core.NewInstance(2, []core.Task{
		{Release: 0, Proc: 1},
		{Release: 0, Proc: 2},
		{Release: 1, Proc: 1},
	})
	s, _, err := Run(inst, JSQRouter{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Machine[2] != 0 {
		t.Fatalf("third task on M%d, want M1 (completion at t=1 must be visible)", s.Machine[2]+1)
	}
}

func TestUtilizationEmpty(t *testing.T) {
	inst := core.NewInstance(2, nil)
	_, m, err := Run(inst, EFTRouter{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Utilization() != 0 || m.MaxFlow() != math.Inf(-1) && m.MaxFlow() != 0 {
		// MaxFlow of an empty run is stats.Max of empty = -Inf; accept either
		// convention but ensure no panic.
		_ = m
	}
}

func TestFlowsByKey(t *testing.T) {
	inst := core.NewInstance(2, []core.Task{
		{Release: 0, Proc: 1, Key: 7},
		{Release: 0, Proc: 1, Key: 7},
		{Release: 0, Proc: 1, Key: 3},
		{Release: 5, Proc: 1, Key: -1}, // untracked
	})
	_, m, err := Run(inst, EFTRouter{})
	if err != nil {
		t.Fatal(err)
	}
	byKey := FlowsByKey(inst, m)
	if len(byKey) != 2 {
		t.Fatalf("keys = %d, want 2", len(byKey))
	}
	if byKey[0].Key != 7 || byKey[0].Requests != 2 {
		t.Fatalf("hottest key = %+v", byKey[0])
	}
	if byKey[1].Key != 3 || byKey[1].Requests != 1 {
		t.Fatalf("second key = %+v", byKey[1])
	}
	if byKey[0].MaxFlow < byKey[0].MeanFlow {
		t.Fatalf("max below mean")
	}
}

func TestHotKeyPenalty(t *testing.T) {
	inst := genInstance(31, 9, 4000, 3)
	_, m, err := Run(inst, EFTRouter{})
	if err != nil {
		t.Fatal(err)
	}
	hot, cold := HotKeyPenalty(inst, m, 0.2)
	if hot <= 0 || cold <= 0 {
		t.Fatalf("penalty values implausible: hot %v cold %v", hot, cold)
	}
	// With replication, hot keys should not be catastrophically worse.
	if hot > 20*cold {
		t.Fatalf("hot keys %vx worse than cold — replication broken?", hot/cold)
	}
	// Degenerate fraction.
	h0, c0 := HotKeyPenalty(inst, m, 0)
	if h0 != 0 || c0 <= 0 {
		t.Fatalf("topFraction=0: hot %v cold %v", h0, c0)
	}
}
