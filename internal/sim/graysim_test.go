package sim

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"flowsched/internal/core"
	"flowsched/internal/faults"
)

// TestRetryBackoffClampNoOverflow is the regression test for the backoff
// overflow: with factor 2 the delay doubles per attempt, so past ~60
// attempts an unclamped product leaves float64's exact-integer range and
// soon overflows to +Inf, poisoning the retry event queue.
func TestRetryBackoffClampNoOverflow(t *testing.T) {
	p := RetryPolicy{Backoff: 1, BackoffFactor: 2}
	for _, attempts := range []int{61, 70, 100, 1000, 1 << 20} {
		d := p.delay(attempts)
		if math.IsInf(d, 0) || math.IsNaN(d) {
			t.Fatalf("delay(%d) = %v, want finite", attempts, d)
		}
		if d != maxBackoff {
			t.Fatalf("delay(%d) = %v, want clamp %v", attempts, d, maxBackoff)
		}
	}
	// Below the clamp the exponential schedule is untouched.
	if got := p.delay(5); got != 16 {
		t.Fatalf("delay(5) = %v, want 16", got)
	}
	// A huge base backoff is clamped even on the first retry.
	huge := RetryPolicy{Backoff: core.Time(math.MaxFloat64), BackoffFactor: 10}
	if got := huge.delay(1); got != maxBackoff {
		t.Fatalf("huge base delay = %v, want clamp %v", got, maxBackoff)
	}
	if got := huge.delay(400); math.IsInf(got, 0) || got != maxBackoff {
		t.Fatalf("huge delay(400) = %v, want clamp %v", got, maxBackoff)
	}
}

// TestSlowdownScalesServiceTime: a factor-2 gray window doubles service
// time, and the extra wall-clock occupancy is accounted as busy time.
func TestSlowdownScalesServiceTime(t *testing.T) {
	inst := core.NewInstance(1, []core.Task{
		{Release: 0, Proc: 10},
		{Release: 0, Proc: 10},
	})
	plan := faults.Empty(1).Slow(0, 0, 100, 2)
	s, m, err := RunFaulty(inst, EFTRouter{}, plan, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Start[0] != 0 || m.Flows[0] != 20 {
		t.Fatalf("first task start %v flow %v, want 0 / 20", s.Start[0], m.Flows[0])
	}
	if s.Start[1] != 20 || m.Flows[1] != 40 {
		t.Fatalf("second task start %v flow %v, want 20 / 40", s.Start[1], m.Flows[1])
	}
	if m.Busy[0] != 40 {
		t.Fatalf("Busy = %v, want 40 (whole occupancy is busy)", m.Busy[0])
	}
	if m.Makespan != 40 {
		t.Fatalf("Makespan = %v, want 40", m.Makespan)
	}

	// Partial overlap: [5, 15) at factor 3. The 10-unit task spends 5 units
	// at full speed, then needs 15 wall units for its remaining 5 but the
	// window only has 10 — 10/3 units done there, 5/3 done after recovery.
	inst2 := core.NewInstance(1, []core.Task{{Release: 0, Proc: 10}})
	plan2 := faults.Empty(1).Slow(0, 5, 15, 3)
	_, m2, err := RunFaulty(inst2, EFTRouter{}, plan2, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	want := 15 + (10.0 - 5 - 10.0/3)
	if math.Abs(m2.Flows[0]-want) > 1e-12 {
		t.Fatalf("partial-overlap flow = %v, want %v", m2.Flows[0], want)
	}
}

// TestRunFaultyNoopSlowdownsByteIdentical: a plan whose slowdowns all have
// factor 1 is the healthy plan, and must reproduce the fault-free run bit
// for bit — normalization drops the segments before any arithmetic splits
// start + proc.
func TestRunFaultyNoopSlowdownsByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		m := 2 + rng.Intn(8)
		n := 1 + rng.Intn(120)
		inst := randomInstance(m, n, rng)
		plan := faults.Empty(m)
		for j := 0; j < m; j++ {
			plan.Slow(j, core.Time(rng.Float64()*5), 5+core.Time(rng.Float64()*50), 1)
		}
		for _, kind := range allRouterKinds {
			seed := rng.Int63()
			ra, rb := routerPair(kind, seed)
			s1, m1, err := Run(inst, ra)
			if err != nil {
				t.Fatalf("trial %d %s: Run: %v", trial, kind, err)
			}
			s2, m2, err := RunFaulty(inst, rb, plan, RetryPolicy{})
			if err != nil {
				t.Fatalf("trial %d %s: RunFaulty: %v", trial, kind, err)
			}
			if !reflect.DeepEqual(s1.Machine, s2.Machine) || !reflect.DeepEqual(s1.Start, s2.Start) {
				t.Fatalf("trial %d %s: schedules differ under no-op slowdowns", trial, kind)
			}
			if !reflect.DeepEqual(m1.Flows, m2.Flows) ||
				!reflect.DeepEqual(m1.Busy, m2.Busy) ||
				m1.Makespan != m2.Makespan {
				t.Fatalf("trial %d %s: metrics differ under no-op slowdowns", trial, kind)
			}
		}
	}
}

// TestGraySimMatchesFinishTime: on crash-free gray plans every completion
// equals faults.FinishTime of its (machine, start, proc), exactly, and
// same-machine executions never overlap under the adjusted completions.
func TestGraySimMatchesFinishTime(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 16; trial++ {
		m := 2 + rng.Intn(6)
		n := 1 + rng.Intn(80)
		inst := randomInstance(m, n, rng)
		plan := faults.GenerateGray(m, 20, faults.GrayConfig{MTBF: 5, MTTR: 5}, rng)
		s, fm, err := RunFaulty(inst, EFTRouter{}, plan, RetryPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		if fm.DroppedCount() != 0 || fm.TotalRetries() != 0 {
			t.Fatalf("trial %d: gray-only plan caused drops/retries", trial)
		}
		segs := plan.Normalize().ServerSlowdowns()
		comp := make([]core.Time, n)
		perMachine := make([][]int, m)
		for i, task := range inst.Tasks {
			j := s.Machine[i]
			comp[i] = faults.FinishTime(segs[j], s.Start[i], task.Proc)
			// Flows stores end − release, so re-adding release rounds in the
			// last bits; compare with a relative tolerance.
			if got := task.Release + fm.Flows[i]; math.Abs(got-comp[i]) > 1e-9*(1+math.Abs(comp[i])) {
				t.Fatalf("trial %d task %d: completion %v, want FinishTime %v", trial, i, got, comp[i])
			}
			perMachine[j] = append(perMachine[j], i)
		}
		for j, ids := range perMachine {
			sort.Slice(ids, func(a, b int) bool { return s.Start[ids[a]] < s.Start[ids[b]] })
			for x := 1; x < len(ids); x++ {
				if s.Start[ids[x]] < comp[ids[x-1]] {
					t.Fatalf("trial %d M%d: task %d starts at %v before %d completes at %v",
						trial, j+1, ids[x], s.Start[ids[x]], ids[x-1], comp[ids[x-1]])
				}
			}
		}
	}
}

// TestRunFaultyMatchesProbedNil pins RunFaulty ≡ RunFaultyProbed(nil):
// byte-identical schedules and metrics on mixed crash + gray plans.
func TestRunFaultyMatchesProbedNil(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		m := 2 + rng.Intn(6)
		n := 1 + rng.Intn(100)
		inst := randomInstance(m, n, rng)
		crash := faults.Generate(m, 10, 8, 2, rng)
		gray := faults.GenerateGray(m, 10, faults.GrayConfig{MTBF: 6, MTTR: 3}, rng)
		plan := crash.Merge(gray)
		pol := RetryPolicy{MaxAttempts: 4, Backoff: 0.05, BackoffFactor: 2, Timeout: 50}
		for _, kind := range allRouterKinds {
			seed := rng.Int63()
			ra, rb := routerPair(kind, seed)
			s1, m1, err := RunFaulty(inst, ra, plan, pol)
			if err != nil {
				t.Fatalf("trial %d %s: RunFaulty: %v", trial, kind, err)
			}
			s2, m2, err := RunFaultyProbed(inst, rb, plan, pol, nil)
			if err != nil {
				t.Fatalf("trial %d %s: RunFaultyProbed: %v", trial, kind, err)
			}
			if !reflect.DeepEqual(s1.Machine, s2.Machine) {
				t.Fatalf("trial %d %s: machines differ", trial, kind)
			}
			for i := range s1.Start {
				a, b := s1.Start[i], s2.Start[i]
				if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
					t.Fatalf("trial %d %s: start %d differs: %v vs %v", trial, kind, i, a, b)
				}
			}
			if !reflect.DeepEqual(m1.Flows, m2.Flows) ||
				!reflect.DeepEqual(m1.Busy, m2.Busy) ||
				!reflect.DeepEqual(m1.Attempts, m2.Attempts) ||
				!reflect.DeepEqual(m1.Dropped, m2.Dropped) ||
				m1.Makespan != m2.Makespan {
				t.Fatalf("trial %d %s: metrics differ", trial, kind)
			}
		}
	}
}
