package sim

import (
	"flowsched/internal/core"
	"flowsched/internal/elastic"
	"flowsched/internal/faults"
	"flowsched/internal/hedge"
	"flowsched/internal/obs"
	"flowsched/internal/overload"
)

// hdRun is the engine-side runtime of a hedge config: the per-task hedge
// state machine (issued → won / cancelled / revoked), the live flow-time
// histogram behind the quantile trigger and the candidate scratch for the
// alternate-server pick. It exists only when a config is present, so the
// disabled path touches none of it and stays byte-identical to RunElastic.
//
// A speculative copy of task id is the virtual attempt id n + id (n = task
// count): the generation / attempt-window / FIFO-link arrays are grown to
// 2n under hedging, so the copy occupies server queues and the completion
// heap exactly like a request of its own while every piece of per-task
// bookkeeping (flows, schedule, dispositions) stays indexed by the real id.
type hdRun struct {
	cfg        *hedge.Config
	ho         obs.HedgeObserver
	hist       *obs.Histogram // live flow-time stream for the quantile trigger
	minSamples int
	maxEnd     core.Time // latest effective completion: the hedged run's makespan

	done       []bool // effective completion recorded (first win)
	hedged     []bool // a copy was issued (at most one hedge per task)
	copyLive   []bool // the copy occupies a server queue right now
	priIn      []bool // the primary attempt occupies a server queue right now
	priDropped []bool // primary hit a drop decision while the copy was live (deferred)
	priRevoked []bool // tied mode revoked the primary; the copy is the sole attempt
	wonByCopy  []bool
	copySrv    []int
	copyAt     core.Times
	effBuf     core.ProcSet // alternate-server candidate scratch
	kills      []int        // copies to cancel after a trim's queue surgery
}

// RunHedged is RunElastic with hedged execution attached: when a dispatched
// request's in-queue + in-service age crosses the hedge trigger (hcfg — a
// fixed delay, a live flow-time quantile, or tied-request mode), the engine
// speculatively re-dispatches a copy to the best *other* eligible server of
// its processing set (respecting membership remapping, outages, ejection
// preference and the admission deadline budget); the first completion wins
// and the losing attempt is cancelled — always before it starts service,
// mid-service only with hcfg.CancelRunning. A nil hcfg is byte-identical to
// RunElastic (property-tested by TestRunHedgedNilConfigEquivalence and
// alloc-pinned by TestRunHedgedNilConfigAllocs).
//
// Invariants the auditor re-checks on every hedged chaos trial (audit.
// Options.Hedge): exactly one effective completion per task, the copy's
// server dispatch-time eligible, cancelled copies never counted in flow
// time, and every unit of duplicate busy time accounted in the metrics'
// DuplicateWork / CancelledWork split.
//
// Each call runs in a private Arena; batch callers reuse one arena's
// RunHedged method to amortize the per-run allocations away.
func RunHedged(inst *core.Instance, router Router, plan *faults.Plan, policy RetryPolicy, cfg *overload.Config, ecfg *elastic.Config, hcfg *hedge.Config, probe obs.Probe) (*core.Schedule, *ElasticMetrics, error) {
	return NewArena().RunHedged(inst, router, plan, policy, cfg, ecfg, hcfg, probe)
}

// retime recomputes server j's unstarted queue suffix back to back from
// instant now (or from the running head's end), pushing fresh completions
// and re-crediting busy time. It is the one "re-dispatch later" re-timing
// rule, shared by the watermark shedder's trim and the hedge layer's
// first-win cancellations, so the two paths cannot drift apart. Speculative
// copies (ids ≥ n) are re-timed like any queue entry but never touch the
// schedule or flow metrics — those belong to effective completions only.
func (a *Arena) retime(inst *core.Instance, slow [][]faults.Slowdown, j int, now core.Time) {
	n := len(inst.Tasks)
	metrics := &a.metrics
	cur := now
	first := a.fq.head[j]
	if h := a.fq.head[j]; h >= 0 && a.curStart[h] <= now {
		cur = a.curEnd[h]
		first = a.fq.next[h]
	}
	for id := first; id >= 0; id = a.fq.next[id] {
		rid := id
		if rid >= n {
			rid -= n
		}
		task := inst.Tasks[rid]
		start := cur
		end := start + task.Proc
		busy := task.Proc
		if slow != nil && len(slow[j]) > 0 {
			end = faults.FinishTime(slow[j], start, task.Proc)
			busy = end - start
		}
		a.gen[id]++
		a.completions.Push(end, compEvent{server: j, task: id, gen: a.gen[id]})
		metrics.Busy[j] += busy - a.busyAdd[id]
		a.curStart[id], a.curEnd[id] = start, end
		a.busyAdd[id] = busy
		if id < n {
			a.sched.Assign(id, j, start)
			metrics.Flows[id] = end - task.Release
			metrics.Stretches[id] = stretchOf(end-task.Release, task.Proc)
		}
		cur = end
	}
	a.st.Completion[j] = cur
}

// cancelAttempt removes attempt aid (a task or its copy, by virtual id)
// from server j's queue at instant now, reclaiming its busy time and
// re-timing the queue behind it. An attempt that has already entered
// service is only cancelled when cancelRunning is set; otherwise it runs to
// completion as duplicate work and the call reports false. Busy time
// reclaimed before service lands in CancelledWork; the executed part of a
// mid-service cancellation is burned duplicate work (DuplicateWork).
func (a *Arena) cancelAttempt(inst *core.Instance, slow [][]faults.Slowdown, aid, j int, now core.Time, cancelRunning bool) bool {
	metrics := &a.metrics
	if a.curStart[aid] < now {
		if !cancelRunning {
			return false
		}
		executed := now - a.curStart[aid]
		a.gen[aid]++
		a.fq.remove(j, aid)
		a.st.QueueLen[j]--
		metrics.Busy[j] -= a.busyAdd[aid] - executed
		metrics.DuplicateWork += executed
		metrics.CancelledWork += a.busyAdd[aid] - executed
		a.retime(inst, slow, j, now)
		return true
	}
	a.gen[aid]++
	a.fq.remove(j, aid)
	a.st.QueueLen[j]--
	metrics.Busy[j] -= a.busyAdd[aid]
	metrics.CancelledWork += a.busyAdd[aid]
	a.retime(inst, slow, j, now)
	return true
}

// armTaskEvent schedules a per-task engine event (a retry re-dispatch, a
// hedge trigger, a tied-pair service-start check) at instant at — the one
// "come back to this task later" re-arm path shared by the retry policy's
// backoff and the hedge triggers.
func (a *Arena) armTaskEvent(kind, id int, at core.Time) {
	a.events.Push(at, faultEvent{kind: kind, task: id})
}

// DuplicateRatio returns the fraction of all server busy time burned on
// losing hedge attempts: DuplicateWork / Σ_j Busy[j] (0 when idle). The
// headline hedge experiment bounds this cost against the p99 win.
func (m *ElasticMetrics) DuplicateRatio() float64 {
	var total core.Time
	for _, b := range m.Busy {
		total += b
	}
	if total <= 0 {
		return 0
	}
	return float64(m.DuplicateWork / total)
}
