package sim

import (
	"math/rand"

	"flowsched/internal/core"
	"flowsched/internal/sched"
)

// PowerOfTwoRouter implements the power-of-two-choices policy over the
// eligible servers: sample two uniformly at random and send the request to
// the one with the shorter queue. A classic randomized load balancer
// (Mitzenmacher) that needs neither clairvoyance nor a full scan; with
// replication factor k the "d choices" are drawn inside the replica set,
// which is exactly how C3-style replica selection operates in key-value
// stores.
type PowerOfTwoRouter struct{ Rng *rand.Rand }

// Name implements Router.
func (PowerOfTwoRouter) Name() string { return "Po2" }

// Pick implements Router.
func (r PowerOfTwoRouter) Pick(st *State, t core.Task) int {
	pickFrom := func(n int, at func(int) int) int {
		a := at(r.Rng.Intn(n))
		b := at(r.Rng.Intn(n))
		if st.QueueLen[b] < st.QueueLen[a] {
			return b
		}
		return a
	}
	if t.Set == nil {
		return pickFrom(st.M, func(i int) int { return i })
	}
	return pickFrom(len(t.Set), func(i int) int { return t.Set[i] })
}

// RoundRobinRouter cycles through servers, skipping ineligible ones — the
// load-oblivious baseline.
type RoundRobinRouter struct{ next int }

// Name implements Router.
func (*RoundRobinRouter) Name() string { return "RR" }

// Reset implements Resettable: it rewinds the cursor so the router can be
// reused across runs (Run/RunFaulty call this automatically).
func (r *RoundRobinRouter) Reset() { r.next = 0 }

// Pick implements Router.
func (r *RoundRobinRouter) Pick(st *State, t core.Task) int {
	for probe := 0; probe < st.M; probe++ {
		j := (r.next + probe) % st.M
		if t.Eligible(j) {
			r.next = j + 1
			return j
		}
	}
	return -1 // unreachable for valid tasks: Validate guarantees a non-empty set
}

// NoisyEFTRouter is EFT with imperfect clairvoyance: at dispatch it knows
// each request's processing time only up to a multiplicative error drawn
// uniformly from [1−RelErr, 1+RelErr], and it tracks machine completion
// times using those estimates. The paper points out that EFT "implies that
// one must know the processing time of arriving tasks with precision"; this
// router quantifies what happens when one does not. It accumulates
// estimated state during a run; Run/RunFaulty reset it automatically.
type NoisyEFTRouter struct {
	Tie    sched.TieBreak
	RelErr float64
	Rng    *rand.Rand

	est []core.Time // estimated completion per machine
}

// Name implements Router.
func (r *NoisyEFTRouter) Name() string { return "EFT-noisy" }

// Reset implements Resettable: it clears the accumulated completion-time
// beliefs so the router can be reused across runs (Run/RunFaulty call this
// automatically).
func (r *NoisyEFTRouter) Reset() { r.est = nil }

// Pick implements Router.
func (r *NoisyEFTRouter) Pick(st *State, t core.Task) int {
	if r.est == nil {
		r.est = make([]core.Time, st.M)
	}
	tie := r.Tie
	if tie == nil {
		tie = sched.MinTie{}
	}
	candidates := eftTieSet(st, t, r.est)
	if len(candidates) == 0 {
		return -1
	}
	j := tie.Pick(candidates)
	// Update the belief with the noisy processing-time estimate.
	noisy := t.Proc * core.Time(1+r.RelErr*(2*r.Rng.Float64()-1))
	if noisy <= 0 {
		noisy = t.Proc * 1e-3
	}
	start := r.est[j]
	if t.Release > start {
		start = t.Release
	}
	r.est[j] = start + noisy
	return j
}
