package sim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"flowsched/internal/core"
	"flowsched/internal/faults"
	"flowsched/internal/overload"
)

// TestRunGuardedNilConfigEquivalence is the disabled-path property: for
// every bundled router, random instances and random fault plans, RunGuarded
// with a nil overload config produces byte-identical schedules and metrics
// to RunFaulty — the overload subsystem must be invisible when off.
func TestRunGuardedNilConfigEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.Intn(8)
		n := 1 + rng.Intn(150)
		inst := randomInstance(m, n, rng)
		var plan *faults.Plan
		if trial%2 == 1 {
			horizon := inst.Tasks[n-1].Release + 10
			plan = faults.Generate(m, horizon, 20, 5, rand.New(rand.NewSource(int64(trial))))
		}
		pol := RetryPolicy{MaxAttempts: 1 + trial%4, Timeout: float64(trial % 3 * 10)}
		for _, kind := range allRouterKinds {
			seed := rng.Int63()
			ra, rb := routerPair(kind, seed)
			s1, m1, err := RunFaulty(inst, ra, plan, pol)
			if err != nil {
				t.Fatalf("trial %d %s: RunFaulty: %v", trial, kind, err)
			}
			s2, om, err := RunGuarded(inst, rb, plan, pol, nil, nil)
			if err != nil {
				t.Fatalf("trial %d %s: RunGuarded: %v", trial, kind, err)
			}
			// Dropped tasks carry NaN start times and flows, so DeepEqual
			// (NaN ≠ NaN) cannot compare the faulty runs directly.
			if !reflect.DeepEqual(s1.Machine, s2.Machine) || !sameTimes(s1.Start, s2.Start) {
				t.Fatalf("trial %d %s: schedules differ with nil config", trial, kind)
			}
			if !sameTimes(m1.Flows, om.Flows) || !sameTimes(m1.Stretches, om.Stretches) ||
				!sameTimes(m1.Busy, om.Busy) || m1.Makespan != om.Makespan ||
				!reflect.DeepEqual(m1.Attempts, om.Attempts) ||
				!reflect.DeepEqual(m1.Dropped, om.Dropped) ||
				!reflect.DeepEqual(m1.Parked, om.Parked) {
				t.Fatalf("trial %d %s: fault metrics differ with nil config", trial, kind)
			}
			if om.Rejected != nil || om.Shed != nil || om.Reason != nil {
				t.Fatalf("trial %d %s: nil config allocated disposition slices", trial, kind)
			}
			if om.RejectedCount() != 0 || om.ShedCount() != 0 || om.Ejections != 0 || om.Brownouts != 0 {
				t.Fatalf("trial %d %s: nil config reported overload activity", trial, kind)
			}
			if om.CompletedCount() != n-om.DroppedCount() {
				t.Fatalf("trial %d %s: %d completed + %d dropped ≠ %d tasks", trial, kind,
					om.CompletedCount(), om.DroppedCount(), n)
			}
		}
	}
}

// TestRunGuardedNilConfigAllocs pins the zero-overhead contract: the
// disabled overload path adds no allocations over RunFaultyProbed (the
// OverloadMetrics wrapper replaces the FaultMetrics allocation one for one).
func TestRunGuardedNilConfigAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := randomInstance(8, 2000, rng)
	plan := faults.Empty(8).Down(0, 5, 50).Down(3, 20, 80)
	pol := RetryPolicy{MaxAttempts: 3}
	if _, _, err := RunGuarded(inst, EFTRouter{}, plan, pol, nil, nil); err != nil {
		t.Fatal(err)
	}
	base := testing.AllocsPerRun(10, func() {
		if _, _, err := RunFaultyProbed(inst, EFTRouter{}, plan, pol, nil); err != nil {
			t.Fatal(err)
		}
	})
	guarded := testing.AllocsPerRun(10, func() {
		if _, _, err := RunGuarded(inst, EFTRouter{}, plan, pol, nil, nil); err != nil {
			t.Fatal(err)
		}
	})
	if guarded > base {
		t.Errorf("nil-config RunGuarded allocates %v per run vs %v for RunFaulty: the disabled path leaks", guarded, base)
	}
}

// TestDeadlineAdmissionBound: with DeadlineAdmit{D}, every completed task
// has flow ≤ D + p_max no matter how overloaded the cluster is, and the
// overload shows up as rejections instead.
func TestDeadlineAdmissionBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		m := 2 + rng.Intn(6)
		inst := overloadedInstance(m, 400, 2.0, rng)
		pmax := 0.0
		for _, task := range inst.Tasks {
			pmax = math.Max(pmax, task.Proc)
		}
		d := core.Time(2 + rng.Float64()*8)
		cfg := &overload.Config{Admission: overload.DeadlineAdmit{D: d}}
		for _, kind := range allRouterKinds {
			r, _ := routerPair(kind, rng.Int63())
			_, om, err := RunGuarded(inst, r, nil, RetryPolicy{}, cfg, nil)
			if err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			if mf := om.AdmittedMaxFlow(); float64(mf) > float64(d)+pmax+1e-9 {
				t.Errorf("trial %d %s: admitted Fmax %v exceeds D+pmax = %v", trial, kind, mf, float64(d)+pmax)
			}
			if om.RejectedCount()+om.ShedCount() == 0 {
				t.Errorf("trial %d %s: 200%% load run admitted everything under deadline %v", trial, kind, d)
			}
		}
	}
}

// TestShedderBoundsQueueAge: with a watermark shedder, no task waits in a
// queue longer than roughly watermark + the head's residual service; the
// shed tasks carry their shed-instant flow and a shed reason.
func TestShedderBoundsQueueAge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, policy := range []overload.ShedPolicy{
		overload.DropNewest, overload.DropOldest, overload.DropRandom, overload.DropLargestStretch,
	} {
		inst := overloadedInstance(4, 400, 1.8, rng)
		wm := core.Time(5)
		cfg := &overload.Config{Shedder: &overload.Shedder{Policy: policy, Watermark: wm, Seed: 5}}
		_, om, err := RunGuarded(inst, EFTRouter{}, nil, RetryPolicy{}, cfg, nil)
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if om.ShedCount() == 0 {
			t.Fatalf("%v: 180%% load run shed nothing at watermark %v", policy, wm)
		}
		for i := range inst.Tasks {
			if !om.Shed[i] {
				continue
			}
			if om.Reason[i] == "" {
				t.Errorf("%v: shed task %d has no reason", policy, i)
			}
			if om.Flows[i] < 0 {
				t.Errorf("%v: shed task %d has negative flow %v", policy, i, om.Flows[i])
			}
		}
		// A non-trivial share of completed tasks must remain: shedding is a
		// trim, not a purge.
		if om.Goodput() < 0.3 {
			t.Errorf("%v: goodput %v collapsed under shedding", policy, om.Goodput())
		}
	}
}

// TestOutlierEjectionUnderGraySlowdown: one server degraded 8× is ejected,
// traffic routes around it, and it is readmitted after the cooldown once the
// degradation ends.
func TestOutlierEjectionUnderGraySlowdown(t *testing.T) {
	m := 4
	rng := rand.New(rand.NewSource(13))
	inst := overloadedInstance(m, 600, 0.7, rng)
	horizon := inst.Tasks[len(inst.Tasks)-1].Release
	plan := faults.Empty(m).Slow(0, 0, horizon/2, 8)
	cfg := &overload.Config{Ejector: &overload.Ejector{K: 2, Cooldown: 5, MinSamples: 5}}
	_, om, err := RunGuarded(inst, EFTRouter{}, plan, RetryPolicy{}, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if om.Ejections == 0 {
		t.Fatal("an 8×-degraded server was never ejected")
	}
	if om.Readmissions == 0 {
		t.Error("the ejected server was never readmitted after recovery")
	}
	if om.DroppedCount() != 0 {
		t.Errorf("%d drops: ejection must be advisory, not a failure mode", om.DroppedCount())
	}
}

// TestGuardBrownoutSignal: pushing far past a tiny configured capacity
// raises the brownout signal.
func TestGuardBrownoutSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	inst := overloadedInstance(4, 300, 1.5, rng)
	cfg := &overload.Config{Guard: overload.NewEstimatorCapacity(1)}
	_, om, err := RunGuarded(inst, EFTRouter{}, nil, RetryPolicy{}, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if om.Brownouts == 0 {
		t.Error("600% of capacity never raised the brownout signal")
	}
}

// TestRunGuardedRejectsBadConfig: a malformed config is a caller error, not
// a panic deep in the run.
func TestRunGuardedRejectsBadConfig(t *testing.T) {
	inst := randomInstance(3, 10, rand.New(rand.NewSource(1)))
	bad := []*overload.Config{
		{Admission: overload.DeadlineAdmit{D: -1}},
		{Admission: overload.QueueBound{}},
		{Shedder: &overload.Shedder{Policy: overload.ShedPolicy(99), Watermark: 1}},
		{Shedder: &overload.Shedder{Policy: overload.DropOldest, Watermark: -2}},
		{Ejector: &overload.Ejector{K: 0.5}},
		{Guard: overload.NewEstimatorCapacity(-3)},
	}
	for i, cfg := range bad {
		if _, _, err := RunGuarded(inst, EFTRouter{}, nil, RetryPolicy{}, cfg, nil); err == nil {
			t.Errorf("bad config %d was accepted", i)
		}
	}
}

// sameTimes compares two time slices treating NaN as equal to NaN (dropped
// tasks carry NaN sentinels).
func sameTimes(a, b []core.Time) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] && !(math.IsNaN(float64(a[i])) && math.IsNaN(float64(b[i]))) {
			return false
		}
	}
	return true
}

// overloadedInstance draws unit-ish tasks at `load`×m arrival rate with
// random replication-style processing sets — the overload test workload.
func overloadedInstance(m, n int, load float64, rng *rand.Rand) *core.Instance {
	tasks := make([]core.Task, n)
	t := 0.0
	for i := range tasks {
		t += rng.ExpFloat64() / (load * float64(m))
		var set core.ProcSet
		if rng.Intn(4) > 0 { // 3-replica ring interval; sometimes unrestricted
			set = core.MustRingInterval(rng.Intn(m), min(3, m), m)
		}
		tasks[i] = core.Task{Release: t, Proc: 0.5 + rng.Float64(), Set: set, Key: i % m}
	}
	return core.NewInstance(m, tasks)
}

// FuzzGuardedDisposition fuzzes admission, shedding and deadline
// enforcement against the disposition invariants: every task is completed,
// dropped, rejected or shed — exactly one of the four — and completed flow
// never exceeds the admission budget plus p_max.
func FuzzGuardedDisposition(f *testing.F) {
	f.Add(int64(1), uint8(4), uint16(60), uint8(0), 5.0, uint8(3), 4.0)
	f.Add(int64(2), uint8(3), uint16(80), uint8(1), 8.0, uint8(0), 0.0)
	f.Add(int64(3), uint8(6), uint16(120), uint8(2), 0.0, uint8(2), 3.0)
	f.Add(int64(4), uint8(2), uint16(40), uint8(3), 2.0, uint8(5), 1.0)
	f.Fuzz(func(t *testing.T, seed int64, m uint8, n uint16, mode uint8, deadline float64, maxQ uint8, watermark float64) {
		mm := 1 + int(m)%10
		nn := 1 + int(n)%200
		rng := rand.New(rand.NewSource(seed))
		inst := overloadedInstance(mm, nn, 0.5+rng.Float64()*1.5, rng)
		pmax := 0.0
		for _, task := range inst.Tasks {
			pmax = math.Max(pmax, task.Proc)
		}

		cfg := &overload.Config{}
		var budget core.Time
		if !(deadline > 0 && deadline < 1e6) {
			deadline = 0
		}
		if !(watermark > 0 && watermark < 1e6) {
			watermark = 0
		}
		switch mode % 4 {
		case 0:
			cfg.Admission = overload.AdmitAll{}
		case 1:
			if deadline == 0 {
				deadline = 1
			}
			cfg.Admission = overload.DeadlineAdmit{D: core.Time(deadline)}
			budget = core.Time(deadline)
		case 2:
			cfg.Admission = overload.QueueBound{MaxQueue: 1 + int(maxQ)%8}
		case 3:
			if watermark == 0 {
				watermark = 1
			}
			cfg.Shedder = &overload.Shedder{
				Policy:    overload.ShedPolicy(int(maxQ) % 4),
				Watermark: core.Time(watermark),
				Seed:      seed,
			}
		}
		plan := faults.Generate(mm, inst.Tasks[nn-1].Release+1, 30, 5, rng)
		r, _ := routerPair(allRouterKinds[int(seed%int64(len(allRouterKinds))+int64(len(allRouterKinds)))%len(allRouterKinds)], seed)
		_, om, err := RunGuarded(inst, r, plan, RetryPolicy{MaxAttempts: 3}, cfg, nil)
		if err != nil {
			t.Fatalf("RunGuarded: %v", err)
		}

		for i := range inst.Tasks {
			kinds := 0
			for _, b := range [...]bool{om.Dropped[i], om.Rejected[i], om.Shed[i]} {
				if b {
					kinds++
				}
			}
			if kinds > 1 {
				t.Errorf("task %d carries %d dispositions", i, kinds)
			}
			if kinds == 0 {
				// Completed: flow is non-negative and bounded by the budget.
				if om.Flows[i] < 0 {
					t.Errorf("completed task %d has negative flow %v", i, om.Flows[i])
				}
				if budget > 0 && float64(om.Flows[i]) > float64(budget)+pmax+1e-9 {
					t.Errorf("completed task %d flow %v exceeds budget %v + pmax %v", i, om.Flows[i], budget, pmax)
				}
			}
			if om.Rejected[i] && om.Flows[i] != 0 {
				t.Errorf("rejected task %d carries flow %v", i, om.Flows[i])
			}
		}
		if got := om.CompletedCount() + om.DroppedCount() + om.RejectedCount() + om.ShedCount(); got != nn {
			t.Errorf("dispositions sum to %d for %d tasks", got, nn)
		}
	})
}
