package sim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"flowsched/internal/core"
	"flowsched/internal/elastic"
	"flowsched/internal/faults"
	"flowsched/internal/overload"
)

// drainFQ pops server j's queue into a slice (test helper).
func drainFQ(fq *fifoQueues, j int) []int {
	var out []int
	for fq.head[j] >= 0 {
		out = append(out, fq.popHead(j))
	}
	return out
}

func TestFIFOQueuesOrder(t *testing.T) {
	var fq fifoQueues
	fq.reset(10, 3)
	for _, id := range []int{4, 1, 7, 2} {
		fq.push(0, id)
	}
	fq.push(1, 5)
	fq.push(1, 9)
	if got := drainFQ(&fq, 0); !reflect.DeepEqual(got, []int{4, 1, 7, 2}) {
		t.Fatalf("server 0 FIFO order = %v", got)
	}
	if got := drainFQ(&fq, 1); !reflect.DeepEqual(got, []int{5, 9}) {
		t.Fatalf("server 1 FIFO order = %v", got)
	}
	if fq.head[2] != -1 || fq.tail[2] != -1 {
		t.Fatalf("untouched server 2 not empty: head %d tail %d", fq.head[2], fq.tail[2])
	}
	// A drained queue accepts pushes again (tail/head cursors consistent).
	fq.push(0, 3)
	if got := drainFQ(&fq, 0); !reflect.DeepEqual(got, []int{3}) {
		t.Fatalf("after drain, server 0 = %v", got)
	}
}

func TestFIFOQueuesRemove(t *testing.T) {
	var fq fifoQueues
	fq.reset(8, 1)
	reload := func(ids ...int) {
		fq.reset(8, 1)
		for _, id := range ids {
			fq.push(0, id)
		}
	}

	// Mid-queue removal preserves the order of the rest (satellite: the old
	// defensive append-copy allocated; the freelist splices in place).
	reload(0, 1, 2, 3)
	fq.remove(0, 2)
	if got := drainFQ(&fq, 0); !reflect.DeepEqual(got, []int{0, 1, 3}) {
		t.Fatalf("mid removal: %v", got)
	}

	// Head removal.
	reload(0, 1, 2)
	fq.remove(0, 0)
	if got := drainFQ(&fq, 0); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("head removal: %v", got)
	}

	// Tail removal must fix the tail cursor so a later push chains correctly.
	reload(0, 1, 2)
	fq.remove(0, 2)
	fq.push(0, 5)
	if got := drainFQ(&fq, 0); !reflect.DeepEqual(got, []int{0, 1, 5}) {
		t.Fatalf("tail removal + push: %v", got)
	}

	// Removing a task that is not queued is a no-op (the defensive drain
	// path), not a corruption.
	reload(0, 1)
	fq.remove(0, 7)
	if got := drainFQ(&fq, 0); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("absent removal mutated the queue: %v", got)
	}

	// Removing the only element empties the queue completely.
	reload(4)
	fq.remove(0, 4)
	if fq.head[0] != -1 || fq.tail[0] != -1 {
		t.Fatalf("single removal left head %d tail %d", fq.head[0], fq.tail[0])
	}
}

func TestFIFOQueuesTakeAll(t *testing.T) {
	var fq fifoQueues
	fq.reset(6, 2)
	for _, id := range []int{3, 0, 5} {
		fq.push(1, id)
	}
	h := fq.takeAll(1)
	if fq.head[1] != -1 || fq.tail[1] != -1 {
		t.Fatalf("takeAll left head %d tail %d", fq.head[1], fq.tail[1])
	}
	var got []int
	for id := h; id >= 0; id = fq.next[id] {
		got = append(got, id)
	}
	if !reflect.DeepEqual(got, []int{3, 0, 5}) {
		t.Fatalf("takeAll chain = %v", got)
	}
}

// TestFIFOQueuesNoAlloc pins the whole point of the freelist: after reset,
// every queue operation — including mid-queue removal, which used to copy the
// tail of a [][]int queue — runs without allocating.
func TestFIFOQueuesNoAlloc(t *testing.T) {
	var fq fifoQueues
	fq.reset(64, 4)
	allocs := testing.AllocsPerRun(10, func() {
		for id := 0; id < 64; id++ {
			fq.push(id%4, id)
		}
		fq.remove(1, 33) // mid-queue
		fq.remove(2, 2)  // head
		fq.remove(3, 63) // tail
		for j := 0; j < 4; j++ {
			for fq.head[j] >= 0 {
				fq.popHead(j)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("fifoQueues operations allocated %.1f times per run; want 0", allocs)
	}
}

// allocInstance is the alloc-pinning workload: bench-shaped (m = 15,
// overlapping-ish random sets, Poisson arrivals) but sized for test speed.
// The steady-state allocation count is shape-independent — it is the fixed
// per-run closure/bookkeeping cost, not FIFO traffic — so the pinned ceiling
// transfers directly to the BENCH_7 SimRun*Steady entries.
func allocInstance(n int, load float64) *core.Instance {
	rng := rand.New(rand.NewSource(7))
	return overloadedInstance(15, n, load, rng)
}

// pinAllocs warms the arena with one run, then asserts the steady-state
// allocation ceiling over the next runs.
func pinAllocs(t *testing.T, ceiling float64, run func()) {
	t.Helper()
	run() // warm: first run sizes every buffer
	if allocs := testing.AllocsPerRun(5, run); allocs > ceiling {
		t.Fatalf("steady-state run allocated %.1f times; ceiling %v", allocs, ceiling)
	}
}

func TestRunFaultyAllocs(t *testing.T) {
	inst := allocInstance(2000, 0.8)
	plan := faults.Empty(15)
	arena := NewArena()
	pinAllocs(t, 50, func() {
		if _, _, err := arena.RunFaulty(inst, EFTRouter{}, plan, RetryPolicy{}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestRunGuardedAllocs(t *testing.T) {
	inst := allocInstance(2000, 0.8)
	arena := NewArena()
	pinAllocs(t, 50, func() {
		if _, _, err := arena.RunGuarded(inst, EFTRouter{}, nil, RetryPolicy{}, nil, nil); err != nil {
			t.Fatal(err)
		}
	})
}

func TestRunGuardedAdmitAllocs(t *testing.T) {
	inst := allocInstance(2000, 1.4) // overloaded: admission, shedder and ejector all fire
	cfg := &overload.Config{
		Admission: overload.DeadlineAdmit{D: 20},
		Shedder:   &overload.Shedder{Policy: overload.DropLargestStretch, Watermark: 15},
		Ejector:   &overload.Ejector{},
	}
	arena := NewArena()
	pinAllocs(t, 100, func() {
		if _, _, err := arena.RunGuarded(inst, EFTRouter{}, nil, RetryPolicy{}, cfg, nil); err != nil {
			t.Fatal(err)
		}
	})
}

func TestRunElasticAllocs(t *testing.T) {
	inst := allocInstance(2000, 0.8)
	arena := NewArena()
	pinAllocs(t, 50, func() {
		if _, _, err := arena.RunElastic(inst, EFTRouter{}, nil, RetryPolicy{}, nil, nil, nil); err != nil {
			t.Fatal(err)
		}
	})
}

func eqTime(a, b core.Time) bool {
	return a == b || (math.IsNaN(float64(a)) && math.IsNaN(float64(b)))
}

// diffElastic returns the name of the first differing field between two
// elastic runs' outputs ("" when byte-identical, NaN-aware).
func diffElastic(s1, s2 *core.Schedule, m1, m2 *ElasticMetrics) string {
	switch {
	case !reflect.DeepEqual(s1.Machine, s2.Machine):
		return "schedule machines"
	case !sameTimes(s1.Start, s2.Start):
		return "schedule starts"
	case !sameTimes(m1.Flows, m2.Flows):
		return "flows"
	case !sameTimes(m1.Stretches, m2.Stretches):
		return "stretches"
	case !sameTimes(m1.Busy, m2.Busy):
		return "busy"
	case !eqTime(m1.Makespan, m2.Makespan):
		return "makespan"
	case !reflect.DeepEqual(m1.Attempts, m2.Attempts):
		return "attempts"
	case !reflect.DeepEqual(m1.Dropped, m2.Dropped):
		return "dropped"
	case !reflect.DeepEqual(m1.Parked, m2.Parked):
		return "parked"
	case !sameTimes(m1.Downtime, m2.Downtime):
		return "downtime"
	case !eqTime(m1.Horizon, m2.Horizon):
		return "horizon"
	case !reflect.DeepEqual(m1.Rejected, m2.Rejected):
		return "rejected"
	case !reflect.DeepEqual(m1.Shed, m2.Shed):
		return "shed"
	case !reflect.DeepEqual(m1.Reason, m2.Reason):
		return "reasons"
	case m1.Ejections != m2.Ejections || m1.Readmissions != m2.Readmissions:
		return "ejector counters"
	case m1.Brownouts != m2.Brownouts:
		return "brownouts"
	case !reflect.DeepEqual(m1.Membership, m2.Membership):
		return "membership log"
	case !sameTimes(m1.Dispatched, m2.Dispatched):
		return "dispatch instants"
	case m1.ScaleUps != m2.ScaleUps || m1.ScaleDowns != m2.ScaleDowns || m1.Handoffs != m2.Handoffs:
		return "scale counters"
	case !eqTime(m1.WarmUpTime, m2.WarmUpTime) || !eqTime(m1.MachineHours, m2.MachineHours):
		return "provisioning integrals"
	}
	return ""
}

// TestArenaReuseEquivalence is the arena's core property: one arena reused
// across every trial — crash plans, gray plans, overload controls, membership
// churn, all seven routers — produces output byte-identical to a fresh arena
// per run. Buffer recycling must be observationally invisible.
func TestArenaReuseEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	shedPolicies := []overload.ShedPolicy{
		overload.DropOldest, overload.DropNewest, overload.DropLargestStretch, overload.DropRandom,
	}
	arena := NewArena() // reused across ALL trials, shapes varying every time
	for trial := 0; trial < 12; trial++ {
		m := 3 + rng.Intn(8)
		n := 20 + rng.Intn(150)
		load := 0.5 + 1.2*rng.Float64()
		inst := overloadedInstance(m, n, load, rng)
		horizon := inst.Tasks[n-1].Release + 10

		var plan *faults.Plan
		switch trial % 3 {
		case 1:
			plan = faults.Generate(m, horizon, 40, 10, rand.New(rand.NewSource(int64(trial))))
		case 2:
			plan = faults.GenerateGray(m, horizon, faults.GrayConfig{MTBF: 40, MTTR: 15},
				rand.New(rand.NewSource(int64(trial))))
		}
		var cfg *overload.Config
		if trial%2 == 1 {
			cfg = &overload.Config{
				Admission: overload.DeadlineAdmit{D: 15},
				Shedder:   &overload.Shedder{Policy: shedPolicies[trial%len(shedPolicies)], Watermark: 8, Seed: 3},
				Ejector:   &overload.Ejector{},
			}
		}
		var ecfg *elastic.Config
		if trial%4 >= 2 {
			ecfg = &elastic.Config{
				Initial: m, Min: 1 + (m-1)/2, Max: m, WarmUp: 0.5,
				Script: []elastic.Event{{At: horizon * 0.25, Delta: -2}, {At: horizon * 0.6, Delta: 2}},
			}
		}
		pol := RetryPolicy{MaxAttempts: 3}

		for _, kind := range allRouterKinds {
			seed := rng.Int63()
			ra, rb := routerPair(kind, seed)
			sF, mF, err := NewArena().RunElastic(inst, ra, plan, pol, cfg, ecfg, nil)
			if err != nil {
				t.Fatalf("trial %d %s: fresh arena: %v", trial, kind, err)
			}
			sR, mR, err := arena.RunElastic(inst, rb, plan, pol, cfg, ecfg, nil)
			if err != nil {
				t.Fatalf("trial %d %s: reused arena: %v", trial, kind, err)
			}
			if d := diffElastic(sF, sR, mF, mR); d != "" {
				t.Fatalf("trial %d %s (m=%d n=%d plan=%v ov=%v el=%v): reused arena diverges: %s",
					trial, kind, m, n, plan != nil, cfg != nil, ecfg != nil, d)
			}
		}
	}
}

// TestArenaMethodsMatchPackageFuncs wires the delegation: the arena's
// RunFaulty / RunGuarded methods are the package functions with recycled
// buffers, down to the returned metrics types.
func TestArenaMethodsMatchPackageFuncs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := randomInstance(6, 80, rng)
	plan := faults.Generate(6, inst.Tasks[79].Release+5, 30, 8, rand.New(rand.NewSource(2)))
	pol := RetryPolicy{MaxAttempts: 2}
	arena := NewArena()

	s1, fm1, err := RunFaulty(inst, EFTRouter{}, plan, pol)
	if err != nil {
		t.Fatal(err)
	}
	s2, fm2, err := arena.RunFaulty(inst, EFTRouter{}, plan, pol)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1.Machine, s2.Machine) || !sameTimes(s1.Start, s2.Start) ||
		!sameTimes(fm1.Flows, fm2.Flows) || !reflect.DeepEqual(fm1.Attempts, fm2.Attempts) {
		t.Fatal("arena.RunFaulty diverges from package RunFaulty")
	}

	cfg := &overload.Config{Admission: overload.QueueBound{MaxQueue: 4}}
	s3, om1, err := RunGuarded(inst, EFTRouter{}, nil, pol, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	s4, om2, err := arena.RunGuarded(inst, EFTRouter{}, nil, pol, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s3.Machine, s4.Machine) || !sameTimes(s3.Start, s4.Start) ||
		!sameTimes(om1.Flows, om2.Flows) || !reflect.DeepEqual(om1.Rejected, om2.Rejected) {
		t.Fatal("arena.RunGuarded diverges from package RunGuarded")
	}
}
