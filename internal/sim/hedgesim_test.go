package sim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"flowsched/internal/core"
	"flowsched/internal/elastic"
	"flowsched/internal/faults"
	"flowsched/internal/hedge"
	"flowsched/internal/obs"
)

// hedgeCountProbe counts effective completions per task (the
// exactly-one-effective-completion invariant) and the hedge event stream.
type hedgeCountProbe struct {
	obs.BaseProbe
	obs.BaseHedgeObserver
	completions []int
	hedges      int
	wins        int
	winsByCopy  int
	cancels     int
}

func newHedgeCountProbe(n int) *hedgeCountProbe {
	return &hedgeCountProbe{completions: make([]int, n)}
}

func (p *hedgeCountProbe) OnComplete(task, server int, release, proc, end core.Time) {
	p.completions[task]++
}

func (p *hedgeCountProbe) OnHedge(task, from, to int, at, start, end core.Time) { p.hedges++ }

func (p *hedgeCountProbe) OnHedgeWin(task, server int, byCopy bool, at core.Time) {
	p.wins++
	if byCopy {
		p.winsByCopy++
	}
}

func (p *hedgeCountProbe) OnHedgeCancel(task, server int, at core.Time, started bool) {
	p.cancels++
}

// checkHedgeResolution asserts the hedge ledger: every issued copy resolved
// as exactly one of win / cancel / revoke, and every task completed at most
// once (and exactly once unless excluded).
func checkHedgeResolution(t *testing.T, inst *core.Instance, em *ElasticMetrics, p *hedgeCountProbe) {
	t.Helper()
	if got := em.HedgeWinsCopy + em.HedgesCancelled + em.HedgesRevoked; got != em.HedgesIssued {
		t.Fatalf("hedge resolution leak: issued %d, wins(copy) %d + cancelled %d + revoked %d = %d",
			em.HedgesIssued, em.HedgeWinsCopy, em.HedgesCancelled, em.HedgesRevoked, got)
	}
	if p.hedges != em.HedgesIssued {
		t.Fatalf("probe saw %d OnHedge, metrics counted %d issued", p.hedges, em.HedgesIssued)
	}
	if p.winsByCopy != em.HedgeWinsCopy {
		t.Fatalf("probe saw %d copy wins, metrics counted %d", p.winsByCopy, em.HedgeWinsCopy)
	}
	if p.wins != em.HedgeWinsCopy+em.HedgeWinsPrimary {
		t.Fatalf("probe saw %d OnHedgeWin, metrics counted %d", p.wins, em.HedgeWinsCopy+em.HedgeWinsPrimary)
	}
	for i, c := range p.completions {
		if c > 1 {
			t.Fatalf("task %d completed %d times: a hedge produced a duplicate effective completion", i, c)
		}
		excluded := em.Dropped[i] ||
			(em.Rejected != nil && em.Rejected[i]) || (em.Shed != nil && em.Shed[i]) ||
			(em.Parked[i] && c == 0) // parked forever
		if c == 0 && !excluded {
			t.Fatalf("task %d never completed and was not dropped/rejected/shed: a hedge lost it", i)
		}
		if em.HedgeWonByCopy[i] && !em.Hedged[i] {
			t.Fatalf("task %d won by copy but was never hedged", i)
		}
	}
	if em.DuplicateWork < 0 || em.CancelledWork < 0 {
		t.Fatalf("negative work accounting: duplicate %v cancelled %v", em.DuplicateWork, em.CancelledWork)
	}
}

// TestRunHedgedNilConfigEquivalence is the disabled-path property: for every
// bundled router, random instances, random fault plans and elastic configs,
// RunHedged with a nil hedge config produces byte-identical schedules and
// metrics to RunElastic — the hedge layer must be invisible when off.
func TestRunHedgedNilConfigEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(977))
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.Intn(8)
		n := 1 + rng.Intn(150)
		inst := randomInstance(m, n, rng)
		var plan *faults.Plan
		if trial%2 == 1 {
			horizon := inst.Tasks[n-1].Release + 10
			plan = faults.Generate(m, horizon, 20, 5, rand.New(rand.NewSource(int64(trial))))
		}
		var ecfg *elastic.Config
		if trial%3 == 2 {
			mid := inst.Tasks[n/2].Release
			ecfg = &elastic.Config{Initial: 1 + m/2, Script: []elastic.Event{{At: mid, Delta: 1}}}
		}
		pol := RetryPolicy{MaxAttempts: 1 + trial%4, Timeout: float64(trial % 3 * 10)}
		for _, kind := range allRouterKinds {
			seed := rng.Int63()
			ra, rb := routerPair(kind, seed)
			s1, m1, err := RunElastic(inst, ra, plan, pol, nil, ecfg, nil)
			if err != nil {
				t.Fatalf("trial %d %s: RunElastic: %v", trial, kind, err)
			}
			s2, m2, err := RunHedged(inst, rb, plan, pol, nil, ecfg, nil, nil)
			if err != nil {
				t.Fatalf("trial %d %s: RunHedged: %v", trial, kind, err)
			}
			if !reflect.DeepEqual(s1.Machine, s2.Machine) || !sameTimes(s1.Start, s2.Start) {
				t.Fatalf("trial %d %s: schedules differ with nil hedge config", trial, kind)
			}
			if !sameTimes(m1.Flows, m2.Flows) || !sameTimes(m1.Stretches, m2.Stretches) ||
				!sameTimes(m1.Busy, m2.Busy) || m1.Makespan != m2.Makespan ||
				!reflect.DeepEqual(m1.Attempts, m2.Attempts) ||
				!reflect.DeepEqual(m1.Dropped, m2.Dropped) ||
				!reflect.DeepEqual(m1.Parked, m2.Parked) ||
				m1.Handoffs != m2.Handoffs || m1.ScaleUps != m2.ScaleUps {
				t.Fatalf("trial %d %s: metrics differ with nil hedge config", trial, kind)
			}
			if m2.Hedged != nil || m2.HedgeCopyServer != nil || m2.HedgeCopyAt != nil || m2.HedgeWonByCopy != nil {
				t.Fatalf("trial %d %s: nil config allocated hedge state", trial, kind)
			}
			if m2.HedgesIssued != 0 || m2.HedgeWinsPrimary != 0 || m2.HedgeWinsCopy != 0 ||
				m2.HedgesCancelled != 0 || m2.HedgesRevoked != 0 ||
				m2.CancelledWork != 0 || m2.DuplicateWork != 0 {
				t.Fatalf("trial %d %s: nil config reported hedge activity", trial, kind)
			}
		}
	}
}

// TestRunHedgedNilConfigAllocs pins the zero-overhead contract: the disabled
// hedge path adds no allocations over RunElastic.
func TestRunHedgedNilConfigAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := randomInstance(8, 2000, rng)
	plan := faults.Empty(8).Down(0, 5, 50).Down(3, 20, 80)
	pol := RetryPolicy{MaxAttempts: 3}
	if _, _, err := RunHedged(inst, EFTRouter{}, plan, pol, nil, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	base := testing.AllocsPerRun(10, func() {
		if _, _, err := RunElastic(inst, EFTRouter{}, plan, pol, nil, nil, nil); err != nil {
			t.Fatal(err)
		}
	})
	hd := testing.AllocsPerRun(10, func() {
		if _, _, err := RunHedged(inst, EFTRouter{}, plan, pol, nil, nil, nil, nil); err != nil {
			t.Fatal(err)
		}
	})
	if hd > base {
		t.Errorf("nil-config RunHedged allocates %v per run vs %v for RunElastic: the disabled path leaks", hd, base)
	}
}

// TestRunHedgedGrayCopyWins is the canonical hedge story: the router,
// blind to a gray failure, parks a task on a crawling server; the delay
// trigger re-dispatches a copy to the healthy one, the copy wins, and the
// task's flow is the copy's — with the loser accounted as duplicate or
// cancelled work depending on cancel-mid-service.
func TestRunHedgedGrayCopyWins(t *testing.T) {
	inst := core.NewInstance(2, []core.Task{{Release: 0, Proc: 10}})
	plan := faults.Empty(2).Slow(0, 0, 1000, 10) // server 0 at 1/10 speed
	for _, cancel := range []bool{true, false} {
		hcfg := &hedge.Config{Delay: 2, CancelRunning: cancel}
		p := newHedgeCountProbe(1)
		s, em, err := RunHedged(inst, EFTRouter{}, plan, RetryPolicy{}, nil, nil, hcfg, p)
		if err != nil {
			t.Fatal(err)
		}
		// EFT ties to server 0 (it cannot see the slowdown): the primary
		// would finish at t=100. The hedge fires at t=2, the copy runs on
		// server 1 over [2, 12) and wins.
		if s.Machine[0] != 1 {
			t.Fatalf("cancel=%v: winner on M%d, want the copy's server M2", cancel, s.Machine[0]+1)
		}
		if em.Flows[0] != 12 {
			t.Fatalf("cancel=%v: flow %v, want 12 (copy dispatched at 2, proc 10)", cancel, em.Flows[0])
		}
		if em.Makespan != 12 {
			t.Fatalf("cancel=%v: makespan %v, want 12 (losers don't extend it)", cancel, em.Makespan)
		}
		if !em.Hedged[0] || !em.HedgeWonByCopy[0] || em.HedgeCopyServer[0] != 1 || em.HedgeCopyAt[0] != 2 {
			t.Fatalf("cancel=%v: hedge vectors %v %v %d %v", cancel, em.Hedged[0], em.HedgeWonByCopy[0], em.HedgeCopyServer[0], em.HedgeCopyAt[0])
		}
		// The cancelled attempt is the primary, not an issued copy, so
		// HedgesCancelled stays 0 — the copy resolved as the win. The
		// primary's cancellation surfaces through OnHedgeCancel.
		if em.HedgesIssued != 1 || em.HedgeWinsCopy != 1 || em.HedgesCancelled != 0 {
			t.Fatalf("cancel=%v: counters issued=%d winsCopy=%d cancelled=%d", cancel, em.HedgesIssued, em.HedgeWinsCopy, em.HedgesCancelled)
		}
		if p.cancels != 1 {
			t.Fatalf("cancel=%v: %d OnHedgeCancel events, want 1 (the losing primary)", cancel, p.cancels)
		}
		if cancel {
			// Primary cancelled mid-service at t=12: 12 units burned, the
			// remaining 88 of its 100-unit slot reclaimed.
			if em.DuplicateWork != 12 || em.CancelledWork != 88 {
				t.Fatalf("cancel=true: duplicate %v cancelled %v, want 12 / 88", em.DuplicateWork, em.CancelledWork)
			}
			if em.Busy[0] != 12 {
				t.Fatalf("cancel=true: Busy[0]=%v, want 12", em.Busy[0])
			}
		} else {
			// Primary runs to completion at t=100 as pure duplicate work.
			if em.DuplicateWork != 100 || em.CancelledWork != 0 {
				t.Fatalf("cancel=false: duplicate %v cancelled %v, want 100 / 0", em.DuplicateWork, em.CancelledWork)
			}
			if em.Busy[0] != 100 {
				t.Fatalf("cancel=false: Busy[0]=%v, want 100", em.Busy[0])
			}
		}
		checkHedgeResolution(t, inst, em, p)
	}
}

// TestRunHedgedSingleLiveMember: a task whose processing set has exactly one
// member has no alternate server — the trigger fires and declines, issuing
// nothing, and the run matches the unhedged one exactly.
func TestRunHedgedSingleLiveMember(t *testing.T) {
	tasks := []core.Task{
		{Release: 0, Proc: 5, Set: core.NewProcSet(0)},
		{Release: 1, Proc: 5, Set: core.NewProcSet(0)},
	}
	inst := core.NewInstance(2, tasks)
	hcfg := &hedge.Config{Delay: 0.5}
	p := newHedgeCountProbe(2)
	_, em, err := RunHedged(inst, EFTRouter{}, nil, RetryPolicy{}, nil, nil, hcfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if em.HedgesIssued != 0 {
		t.Fatalf("issued %d hedges with no alternate server", em.HedgesIssued)
	}
	_, base, err := RunElastic(inst, EFTRouter{}, nil, RetryPolicy{}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sameTimes(base.Flows, em.Flows) || base.Makespan != em.Makespan {
		t.Fatalf("a declined hedge perturbed the run: flows %v vs %v", em.Flows, base.Flows)
	}
	checkHedgeResolution(t, inst, em, p)
}

// TestRunHedgedTargetOutage: the copy's server crashes mid-flight. The copy
// is killed by the failover (never retried — copies are speculative), the
// primary carries the task, and the ledger resolves the copy as cancelled.
func TestRunHedgedTargetOutage(t *testing.T) {
	inst := core.NewInstance(2, []core.Task{{Release: 0, Proc: 10}})
	// Server 0 is slow, so the hedge copy lands on server 1 at t=2 — and
	// server 1 dies at t=5 with the copy running.
	plan := faults.Empty(2).Slow(0, 0, 1000, 10).Down(1, 5, 1000)
	hcfg := &hedge.Config{Delay: 2, CancelRunning: true}
	p := newHedgeCountProbe(1)
	s, em, err := RunHedged(inst, EFTRouter{}, plan, RetryPolicy{}, nil, nil, hcfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Machine[0] != 0 {
		t.Fatalf("winner on M%d, want the primary's server M1", s.Machine[0]+1)
	}
	if em.Flows[0] != 100 {
		t.Fatalf("flow %v, want 100 (primary on the 1/10-speed server)", em.Flows[0])
	}
	if em.HedgesIssued != 1 || em.HedgesCancelled != 1 || em.HedgeWinsPrimary != 1 || em.HedgeWinsCopy != 0 {
		t.Fatalf("counters issued=%d cancelled=%d winsPrimary=%d winsCopy=%d",
			em.HedgesIssued, em.HedgesCancelled, em.HedgeWinsPrimary, em.HedgeWinsCopy)
	}
	if em.DuplicateWork != 3 {
		t.Fatalf("duplicate work %v, want 3 (the copy ran [2,5) before the crash)", em.DuplicateWork)
	}
	checkHedgeResolution(t, inst, em, p)
}

// TestRunHedgedVictimDrainedMidFlight: an elastic scale-down drains the
// server holding a queued hedge copy. The copy is cancelled (never handed
// off), the primary completes the task, and no handoff is counted for it.
func TestRunHedgedVictimDrainedMidFlight(t *testing.T) {
	tasks := []core.Task{
		{Release: 0, Proc: 4},             // occupies M2 so the copy queues behind it
		{Release: 0.5, Proc: 10, Key: 1},  // the hedged task, primary on slow M1
		{Release: 1.0, Proc: 0.1, Key: 2}, // arrival that carries the scale-down script instant
	}
	inst := core.NewInstance(2, tasks)
	plan := faults.Empty(2).Slow(0, 0, 1000, 20)
	// Scale from 2 members down to 1 at t=3: machine 1 (the copy's server)
	// drains. Min=1 keeps machine 0.
	ecfg := &elastic.Config{Script: []elastic.Event{{At: 3, Delta: -1}}, Min: 1}
	hcfg := &hedge.Config{Delay: 1, CancelRunning: false}
	p := newHedgeCountProbe(3)
	_, em, err := RunHedged(inst, JSQRouter{}, plan, RetryPolicy{}, nil, ecfg, hcfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if em.ScaleDowns != 1 {
		t.Fatalf("scale-downs %d, want 1", em.ScaleDowns)
	}
	for i := range tasks {
		if p.completions[i] != 1 {
			t.Fatalf("task %d completed %d times after the drain", i, p.completions[i])
		}
	}
	checkHedgeResolution(t, inst, em, p)
}

// TestRunHedgedTiedPair: tied mode enqueues both attempts up front and
// revokes the loser the moment the first one reaches service.
func TestRunHedgedTiedPair(t *testing.T) {
	tasks := []core.Task{
		{Release: 0, Proc: 10},          // fills server 0 (RR)
		{Release: 0.5, Proc: 3, Key: 1}, // fills server 1 (RR)
		{Release: 1, Proc: 2, Key: 2},   // the tied pair: primary M1 (queued), copy M2 (queued)
	}
	inst := core.NewInstance(2, tasks)
	hcfg := &hedge.Config{Tied: true}
	p := newHedgeCountProbe(3)
	_, em, err := RunHedged(inst, &RoundRobinRouter{}, nil, RetryPolicy{}, nil, nil, hcfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if em.HedgesIssued != 3 {
		t.Fatalf("tied mode issued %d copies, want one per task", em.HedgesIssued)
	}
	if em.HedgesRevoked+em.HedgeWinsCopy+em.HedgesCancelled != 3 {
		t.Fatalf("tied resolution leak: revoked=%d winsCopy=%d cancelled=%d",
			em.HedgesRevoked, em.HedgeWinsCopy, em.HedgesCancelled)
	}
	if em.HedgesRevoked == 0 {
		t.Fatalf("no tied revocation happened (revoked=%d)", em.HedgesRevoked)
	}
	for i := range tasks {
		if p.completions[i] != 1 {
			t.Fatalf("task %d completed %d times under tied hedging", i, p.completions[i])
		}
	}
	checkHedgeResolution(t, inst, em, p)
}

// TestRunHedgedRetryRace is the regression for the retry-vs-hedge race: a
// crashed primary's retry and a completing copy must never both produce an
// effective completion. Randomized crash plans with aggressive retries and
// low hedge delays hammer the interleavings; the probe counts completions.
func TestRunHedgedRetryRace(t *testing.T) {
	rng := rand.New(rand.NewSource(551))
	for trial := 0; trial < 30; trial++ {
		m := 2 + rng.Intn(6)
		n := 20 + rng.Intn(120)
		inst := randomInstance(m, n, rng)
		horizon := inst.Tasks[n-1].Release + 10
		plan := faults.Generate(m, horizon, 10, 3, rand.New(rand.NewSource(int64(trial))))
		pol := RetryPolicy{MaxAttempts: 1 + rng.Intn(4), Backoff: rng.Float64(), Timeout: 5 + rng.Float64()*20}
		hcfg := &hedge.Config{Delay: 0.1 + rng.Float64(), CancelRunning: trial%2 == 0}
		if trial%3 == 0 {
			hcfg = &hedge.Config{Tied: true, CancelRunning: trial%2 == 0}
		}
		kind := allRouterKinds[trial%len(allRouterKinds)]
		router, _ := routerPair(kind, rng.Int63())
		p := newHedgeCountProbe(n)
		_, em, err := RunHedged(inst, router, plan, pol, nil, nil, hcfg, p)
		if err != nil {
			t.Fatalf("trial %d %s: %v", trial, kind, err)
		}
		checkHedgeResolution(t, inst, em, p)
		for i := range inst.Tasks {
			if p.completions[i] == 1 && (math.IsNaN(float64(em.Flows[i])) || em.Flows[i] <= 0) {
				t.Fatalf("trial %d: completed task %d has flow %v", trial, i, em.Flows[i])
			}
		}
	}
}

// TestRunHedgedQuantileTrigger: the pN trigger reads the live flow-time
// histogram — before MinSamples completions it stays disarmed (no Delay
// fallback configured), after warm-up it hedges stragglers. The router is
// round-robin, which (unlike EFT) cannot see the gray server's inflated
// completion times and keeps feeding it — exactly the blind-dispatch regime
// hedging is for.
func TestRunHedgedQuantileTrigger(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	n := 400
	tasks := make([]core.Task, n)
	at := 0.0
	for i := range tasks {
		at += rng.ExpFloat64() / 2 // underloaded: 4 servers, arrival rate 2
		tasks[i] = core.Task{Release: at, Proc: 0.5 + rng.Float64(), Key: i % 4}
	}
	inst := core.NewInstance(4, tasks)
	// One gray server makes stragglers: round-robin keeps sending it work.
	plan := faults.Empty(4).Slow(0, 10, 1e6, 8)
	hcfg := &hedge.Config{Quantile: 0.95, MinSamples: 50}
	p := newHedgeCountProbe(n)
	_, em, err := RunHedged(inst, &RoundRobinRouter{}, plan, RetryPolicy{}, nil, nil, hcfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if em.HedgesIssued == 0 {
		t.Fatal("p95 trigger never fired under a gray fault")
	}
	checkHedgeResolution(t, inst, em, p)
	_, base, err := RunElastic(inst, &RoundRobinRouter{}, plan, RetryPolicy{}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hp, bp := maxFlow(em.Flows), maxFlow(base.Flows); hp >= bp/2 {
		t.Fatalf("p95 hedging did not substantially improve the worst flow: %v (hedged) vs %v (base)", hp, bp)
	}
}

func maxFlow(fs []core.Time) core.Time {
	var mx core.Time
	for _, f := range fs {
		if !math.IsNaN(float64(f)) && f > mx {
			mx = f
		}
	}
	return mx
}

// TestHedgeConfigValidate covers the config surface.
func TestHedgeConfigValidate(t *testing.T) {
	cases := []struct {
		cfg *hedge.Config
		ok  bool
	}{
		{nil, true},
		{&hedge.Config{Delay: 1}, true},
		{&hedge.Config{Quantile: 0.99}, true},
		{&hedge.Config{Tied: true}, true},
		{&hedge.Config{}, false},               // no trigger
		{&hedge.Config{Delay: -1}, false},      // negative delay
		{&hedge.Config{Quantile: 1.0}, false},  // quantile out of range
		{&hedge.Config{Quantile: -0.5}, false}, // quantile out of range
		{&hedge.Config{Delay: core.Time(math.Inf(1))}, false},
		{&hedge.Config{Delay: 1, MinSamples: -1}, false},
		{&hedge.Config{Delay: 1, MaxHedges: -1}, false},
	}
	for i, c := range cases {
		err := c.cfg.Validate()
		if c.ok && err != nil {
			t.Errorf("case %d: unexpected error %v", i, err)
		}
		if !c.ok && err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, c.cfg)
		}
	}
	inst := core.NewInstance(2, []core.Task{{Release: 0, Proc: 1}})
	if _, _, err := RunHedged(inst, EFTRouter{}, nil, RetryPolicy{}, nil, nil, &hedge.Config{}, nil); err == nil {
		t.Error("RunHedged accepted a triggerless config")
	}
}

// FuzzHedgedDispatch drives RunHedged through randomized instances, fault
// plans, retry policies and hedge configs, asserting the hedge ledger and
// the exactly-one-effective-completion invariant on every run.
func FuzzHedgedDispatch(f *testing.F) {
	f.Add(int64(1), uint8(4), uint16(60), uint8(0), false, false, uint8(20))
	f.Add(int64(42), uint8(2), uint16(10), uint8(1), true, true, uint8(0))
	f.Add(int64(7), uint8(6), uint16(200), uint8(2), false, true, uint8(95))
	f.Add(int64(99), uint8(3), uint16(35), uint8(3), true, false, uint8(50))
	f.Fuzz(func(t *testing.T, seed int64, m8 uint8, n16 uint16, kind8 uint8, tied, cancel bool, q8 uint8) {
		m := 2 + int(m8%7)
		n := 1 + int(n16%300)
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(m, n, rng)
		var plan *faults.Plan
		if seed%2 == 0 {
			horizon := inst.Tasks[n-1].Release + 10
			plan = faults.Generate(m, horizon, 15, 4, rand.New(rand.NewSource(seed+1)))
		}
		pol := RetryPolicy{MaxAttempts: int(seed & 3), Backoff: float64((seed%3+3)%3) * 0.2}
		hcfg := &hedge.Config{Tied: tied, CancelRunning: cancel}
		if !tied {
			if q := float64(q8%100) / 100; q > 0 {
				hcfg.Quantile = q
				hcfg.MinSamples = 10
			} else {
				hcfg.Delay = 0.5
			}
			if hcfg.Quantile == 0 && hcfg.Delay == 0 {
				hcfg.Delay = 1
			}
		}
		kind := allRouterKinds[int(kind8)%len(allRouterKinds)]
		router, _ := routerPair(kind, seed)
		p := newHedgeCountProbe(n)
		_, em, err := RunHedged(inst, router, plan, pol, nil, nil, hcfg, p)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		checkHedgeResolution(t, inst, em, p)
	})
}
