package sim

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"flowsched/internal/audit"
	"flowsched/internal/core"
	"flowsched/internal/elastic"
	"flowsched/internal/faults"
	"flowsched/internal/overload"
)

// auditElastic runs the full invariant audit on an elastic run, membership
// checks included (completions are reconstructed as release + flow for
// completed tasks).
func auditElastic(t *testing.T, inst *core.Instance, s *core.Schedule, em *ElasticMetrics, plan *faults.Plan) {
	t.Helper()
	comps := make([]core.Time, inst.N())
	for i := range comps {
		comps[i] = inst.Tasks[i].Release + em.Flows[i]
	}
	opts := audit.Options{
		Plan:           plan,
		Completions:    comps,
		Dropped:        em.Dropped,
		SkipLowerBound: true,
	}
	if em.Rejected != nil || em.Shed != nil {
		opts.Overload = &audit.OverloadInfo{Rejected: em.Rejected, Shed: em.Shed}
	}
	if em.Membership != nil {
		opts.Membership = &audit.MembershipInfo{Membership: em.Membership, Dispatched: em.Dispatched}
	}
	if r := audit.Audit(inst, s, opts); !r.Ok() {
		t.Fatalf("audit: %v", r)
	}
}

// TestRunElasticNilConfigEquivalence is the disabled-path property: for every
// bundled router, random instances and random fault plans, RunElastic with a
// nil elastic config produces byte-identical schedules and metrics to
// RunFaulty — the membership layer must be invisible when off.
func TestRunElasticNilConfigEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.Intn(8)
		n := 1 + rng.Intn(150)
		inst := randomInstance(m, n, rng)
		var plan *faults.Plan
		if trial%2 == 1 {
			horizon := inst.Tasks[n-1].Release + 10
			plan = faults.Generate(m, horizon, 20, 5, rand.New(rand.NewSource(int64(trial))))
		}
		pol := RetryPolicy{MaxAttempts: 1 + trial%4, Timeout: float64(trial % 3 * 10)}
		for _, kind := range allRouterKinds {
			seed := rng.Int63()
			ra, rb := routerPair(kind, seed)
			s1, m1, err := RunFaulty(inst, ra, plan, pol)
			if err != nil {
				t.Fatalf("trial %d %s: RunFaulty: %v", trial, kind, err)
			}
			s2, em, err := RunElastic(inst, rb, plan, pol, nil, nil, nil)
			if err != nil {
				t.Fatalf("trial %d %s: RunElastic: %v", trial, kind, err)
			}
			if !reflect.DeepEqual(s1.Machine, s2.Machine) || !sameTimes(s1.Start, s2.Start) {
				t.Fatalf("trial %d %s: schedules differ with nil elastic config", trial, kind)
			}
			if !sameTimes(m1.Flows, em.Flows) || !sameTimes(m1.Stretches, em.Stretches) ||
				!sameTimes(m1.Busy, em.Busy) || m1.Makespan != em.Makespan ||
				!reflect.DeepEqual(m1.Attempts, em.Attempts) ||
				!reflect.DeepEqual(m1.Dropped, em.Dropped) ||
				!reflect.DeepEqual(m1.Parked, em.Parked) {
				t.Fatalf("trial %d %s: metrics differ with nil elastic config", trial, kind)
			}
			if em.Membership != nil || em.Dispatched != nil {
				t.Fatalf("trial %d %s: nil config allocated membership state", trial, kind)
			}
			if em.ScaleUps != 0 || em.ScaleDowns != 0 || em.Handoffs != 0 ||
				em.WarmUpTime != 0 || em.MachineHours != 0 {
				t.Fatalf("trial %d %s: nil config reported membership activity", trial, kind)
			}
		}
	}
}

// TestRunElasticNilConfigAllocs pins the zero-overhead contract: the disabled
// membership path adds no allocations over RunFaultyProbed (the
// ElasticMetrics wrapper replaces the FaultMetrics allocation one for one).
func TestRunElasticNilConfigAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := randomInstance(8, 2000, rng)
	plan := faults.Empty(8).Down(0, 5, 50).Down(3, 20, 80)
	pol := RetryPolicy{MaxAttempts: 3}
	if _, _, err := RunElastic(inst, EFTRouter{}, plan, pol, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	base := testing.AllocsPerRun(10, func() {
		if _, _, err := RunFaultyProbed(inst, EFTRouter{}, plan, pol, nil); err != nil {
			t.Fatal(err)
		}
	})
	el := testing.AllocsPerRun(10, func() {
		if _, _, err := RunElastic(inst, EFTRouter{}, plan, pol, nil, nil, nil); err != nil {
			t.Fatal(err)
		}
	})
	if el > base {
		t.Errorf("nil-config RunElastic allocates %v per run vs %v for RunFaulty: the disabled path leaks", el, base)
	}
}

// TestRunElasticFullMembershipMatchesStatic: an elastic config that starts at
// full capacity and never scales routes restricted ring-interval work exactly
// like the static engine — the effective-set walk at full membership is the
// identity on circular intervals.
func TestRunElasticFullMembershipMatchesStatic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		m := 3 + rng.Intn(6)
		n := 20 + rng.Intn(100)
		ts := make([]core.Task, n)
		at := 0.0
		for i := range ts {
			at += rng.ExpFloat64() / float64(m)
			k := 1 + rng.Intn(m)
			ts[i] = core.Task{Release: at, Proc: 0.5 + rng.Float64(), Set: core.MustRingInterval(rng.Intn(m), k, m), Key: i % m}
		}
		inst := core.NewInstance(m, ts)
		s1, m1, err := RunGuarded(inst, EFTRouter{}, nil, RetryPolicy{}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		s2, em, err := RunElastic(inst, EFTRouter{}, nil, RetryPolicy{}, nil, &elastic.Config{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(s1.Machine, s2.Machine) || !sameTimes(s1.Start, s2.Start) {
			t.Fatalf("trial %d: full-membership elastic schedule differs from static", trial)
		}
		if !sameTimes(m1.Flows, em.Flows) {
			t.Fatalf("trial %d: full-membership elastic flows differ from static", trial)
		}
		if em.Membership == nil || em.Membership.Initial != m || len(em.Membership.Changes) != 0 {
			t.Fatalf("trial %d: unexpected membership log %+v", trial, em.Membership)
		}
		auditElastic(t, inst, s2, em, nil)
	}
}

// TestScaleDownDrainNoTaskLost: a scripted deep scale-down in the middle of a
// busy run hands every queued task off to the survivors; nothing is lost,
// every task completes, and the audit membership invariants hold.
func TestScaleDownDrainNoTaskLost(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	m := 8
	inst := overloadedInstance(m, 300, 0.9, rng)
	mid := inst.Tasks[150].Release
	ecfg := &elastic.Config{Script: []elastic.Event{{At: mid, Delta: -5}}, Min: 2}
	s, em, err := RunElastic(inst, EFTRouter{}, nil, RetryPolicy{}, nil, ecfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if em.ScaleDowns != 5 {
		t.Fatalf("scripted −5 performed %d scale-downs", em.ScaleDowns)
	}
	if em.Membership.Final() != 3 {
		t.Fatalf("final membership %d, want 3", em.Membership.Final())
	}
	if em.DroppedCount() != 0 {
		t.Fatalf("%d tasks dropped: drain lost work", em.DroppedCount())
	}
	for i := range inst.Tasks {
		if s.Machine[i] < 0 {
			t.Fatalf("task %d left unassigned after drain", i)
		}
	}
	if em.Handoffs == 0 {
		t.Error("a mid-run 5-machine drain under 90% load moved no queued tasks")
	}
	auditElastic(t, inst, s, em, nil)
}

// TestScaleDownSoleMemberVictim: the drained machine is the sole member of a
// task's static set (k = 1). The effective-set walk must hand the task to the
// next active machine instead of stranding or losing it.
func TestScaleDownSoleMemberVictim(t *testing.T) {
	m := 3
	inst := core.NewInstance(m, []core.Task{
		// Pin three tasks to slot 2 (the future victim); the first is running
		// at the drain instant, the rest are queued behind it.
		{Release: 0, Proc: 10, Set: core.NewProcSet(2)},
		{Release: 1, Proc: 2, Set: core.NewProcSet(2)},
		{Release: 2, Proc: 2, Set: core.NewProcSet(2)},
		// A post-drain arrival whose set names only the drained slot.
		{Release: 6, Proc: 1, Set: core.NewProcSet(2)},
	})
	ecfg := &elastic.Config{Script: []elastic.Event{{At: 5, Delta: -1}}}
	s, em, err := RunElastic(inst, EFTRouter{}, nil, RetryPolicy{}, nil, ecfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Machine[0] != 2 {
		t.Fatalf("running head moved to M%d; it must finish in place", s.Machine[0]+1)
	}
	if em.Handoffs != 2 {
		t.Fatalf("expected 2 handoffs, got %d", em.Handoffs)
	}
	for i := 1; i < 4; i++ {
		if s.Machine[i] == 2 || s.Machine[i] < 0 {
			t.Fatalf("task %d on M%d: should have walked to a survivor", i, s.Machine[i]+1)
		}
	}
	if em.DroppedCount() != 0 {
		t.Fatalf("%d drops: sole-member drain lost work", em.DroppedCount())
	}
	auditElastic(t, inst, s, em, nil)
}

// TestScaleDownHandoffTargetDown: the drain's only surviving target is itself
// inside an outage at the handoff instant. The handed-off task parks and
// completes after the recovery — drained work survives even a racing fault.
func TestScaleDownHandoffTargetDown(t *testing.T) {
	m := 2
	inst := core.NewInstance(m, []core.Task{
		{Release: 0, Proc: 10, Set: core.NewProcSet(1)}, // running on 1 at drain
		{Release: 1, Proc: 2, Set: core.NewProcSet(1)},  // queued on 1, handed to 0
	})
	plan := faults.Empty(m).Down(0, 2, 20) // the handoff target is down
	ecfg := &elastic.Config{Script: []elastic.Event{{At: 5, Delta: -1}}}
	s, em, err := RunElastic(inst, EFTRouter{}, plan, RetryPolicy{}, nil, ecfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if em.Handoffs != 1 {
		t.Fatalf("expected 1 handoff, got %d", em.Handoffs)
	}
	if !em.Parked[1] {
		t.Error("handed-off task with its target down should have parked")
	}
	if em.DroppedCount() != 0 {
		t.Fatalf("%d drops: parked handoff was lost", em.DroppedCount())
	}
	if s.Machine[1] != 0 || s.Start[1] < 20 {
		t.Fatalf("task 1 ran on M%d at %v; want M1 after its recovery at t=20", s.Machine[1]+1, s.Start[1])
	}
	auditElastic(t, inst, s, em, plan)
}

// TestScaleDownRacingZoneOutage: a scripted scale-down at the very instant a
// correlated zone outage fires. Drain and failover compose: no task is lost,
// dispositions stay exactly-once and the membership audit holds.
func TestScaleDownRacingZoneOutage(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	m := 6
	inst := overloadedInstance(m, 200, 0.8, rng)
	mid := inst.Tasks[100].Release
	// Zone = upper half of the ring; the victim of the scale-down (highest
	// active slot) sits inside the failing zone.
	plan := faults.Empty(m)
	for j := 3; j < 6; j++ {
		plan.Down(j, mid, mid+15)
	}
	ecfg := &elastic.Config{Script: []elastic.Event{{At: mid, Delta: -2}}, Min: 2}
	s, em, err := RunElastic(inst, EFTRouter{}, plan, RetryPolicy{}, nil, ecfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if em.ScaleDowns != 2 {
		t.Fatalf("scripted −2 performed %d scale-downs", em.ScaleDowns)
	}
	if em.DroppedCount() != 0 {
		t.Fatalf("%d drops under zero-timeout policy: work was lost", em.DroppedCount())
	}
	for i := range inst.Tasks {
		if s.Machine[i] < 0 {
			t.Fatalf("task %d unassigned after drain+outage race", i)
		}
	}
	auditElastic(t, inst, s, em, plan)
}

// TestScaleUpWarmUpDelay: a joiner announced at t accepts no work before
// t + WarmUp, and the membership log records the join at the warm-up end.
func TestScaleUpWarmUpDelay(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	m := 4
	inst := overloadedInstance(m, 200, 1.2, rng)
	mid := inst.Tasks[60].Release
	warm := core.Time(3)
	ecfg := &elastic.Config{Initial: 2, WarmUp: warm,
		Script: []elastic.Event{{At: mid, Delta: 2}}}
	s, em, err := RunElastic(inst, EFTRouter{}, nil, RetryPolicy{}, nil, ecfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if em.ScaleUps != 2 {
		t.Fatalf("scripted +2 performed %d scale-ups", em.ScaleUps)
	}
	if em.WarmUpTime != 2*warm {
		t.Fatalf("warm-up time %v, want %v", em.WarmUpTime, 2*warm)
	}
	joined := map[int]core.Time{}
	for _, ch := range em.Membership.Changes {
		if !ch.Join {
			t.Fatalf("unexpected drain in a scale-up-only run: %+v", ch)
		}
		if ch.At != mid+warm {
			t.Fatalf("join at %v, want %v", ch.At, mid+warm)
		}
		joined[ch.Machine] = ch.At
	}
	for i := range inst.Tasks {
		if at, ok := joined[s.Machine[i]]; ok && s.Start[i] < at {
			t.Fatalf("task %d starts at %v on joiner M%d before its join at %v",
				i, s.Start[i], s.Machine[i]+1, at)
		}
	}
	auditElastic(t, inst, s, em, nil)
}

// TestAutoscalerScalesUpUnderBurst: a sustained overload burst against a
// small initial membership makes the estimator-driven autoscaler grow the
// ring; the run stays audit-clean and machine-hours stay below the
// static-peak cost.
func TestAutoscalerScalesUpUnderBurst(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	m := 8
	inst := overloadedInstance(m, 600, 0.9, rng) // ~0.9·m offered vs 2 initial machines
	ecfg := &elastic.Config{
		Initial: 2,
		WarmUp:  0.5,
		Auto: &elastic.Autoscaler{
			Guard:           overload.NewEstimatorCapacity(float64(m)),
			MachineCapacity: 1,
			Sustain:         0.5,
			Cooldown:        1,
		},
	}
	s, em, err := RunElastic(inst, EFTRouter{}, nil, RetryPolicy{}, nil, ecfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if em.ScaleUps == 0 {
		t.Fatal("450% overload of the initial membership never scaled up")
	}
	if em.Membership.Final() <= 2 {
		t.Fatalf("final membership %d did not grow", em.Membership.Final())
	}
	if hours := em.MachineHours; hours >= core.Time(m)*em.Horizon {
		t.Fatalf("autoscaled machine-hours %v not below static-peak %v", hours, core.Time(m)*em.Horizon)
	}
	auditElastic(t, inst, s, em, nil)
}

// TestSlowdownOnJoiningMachine is the satellite-2 regression: a gray-failure
// slowdown scripted (via faults.Plan.Extend) for a slot that only joins
// mid-run must apply to the joiner's executions — slot ids are stable, so the
// audit's slowdown-adjusted completion check passes.
func TestSlowdownOnJoiningMachine(t *testing.T) {
	m := 3
	small := faults.Empty(2).Slow(1, 0, 100, 4) // authored for a 2-slot cluster
	plan, err := small.Extend(m)
	if err != nil {
		t.Fatal(err)
	}
	plan.Slow(2, 0, 100, 2) // the joiner runs at half speed the whole run
	inst := core.NewInstance(m, []core.Task{
		{Release: 0, Proc: 4, Set: core.NewProcSet(0)},
		{Release: 0.5, Proc: 4, Set: core.NewProcSet(0, 1, 2)},
		{Release: 6, Proc: 4, Set: core.NewProcSet(2)},
	})
	ecfg := &elastic.Config{Initial: 2, WarmUp: 1,
		Script: []elastic.Event{{At: 4, Delta: 1}}}
	s, em, err := RunElastic(inst, EFTRouter{}, plan, RetryPolicy{}, nil, ecfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Machine[2] != 2 {
		t.Fatalf("task 2 ran on M%d, want the joiner M3", s.Machine[2]+1)
	}
	// The joiner is slowed 2×: proc 4 occupies 8 time units.
	if got := em.Flows[2]; math.Abs(float64(got-(s.Start[2]+8-inst.Tasks[2].Release))) > 1e-9 {
		t.Fatalf("flow %v on the slowed joiner, want start %v + 8 − release %v", got, s.Start[2], inst.Tasks[2].Release)
	}
	auditElastic(t, inst, s, em, plan)
}

// TestRunElasticRejectsUndersizedPlan: a plan authored for fewer slots than
// the instance is a caller error pointing at faults.Plan.Extend, and Extend
// itself refuses to shrink.
func TestRunElasticRejectsUndersizedPlan(t *testing.T) {
	inst := randomInstance(4, 10, rand.New(rand.NewSource(1)))
	plan := faults.Empty(2).Down(1, 0, 5)
	_, _, err := RunElastic(inst, EFTRouter{}, plan, RetryPolicy{}, nil, &elastic.Config{}, nil)
	if err == nil || !strings.Contains(err.Error(), "Extend") {
		t.Fatalf("undersized plan error should mention faults.Plan.Extend, got %v", err)
	}
	if _, err := plan.Extend(1); err == nil {
		t.Error("Extend shrank a plan below its authored size")
	}
	grown, err := plan.Extend(4)
	if err != nil || grown.M != 4 || len(grown.Outages) != 1 {
		t.Fatalf("Extend(4) = %+v, %v", grown, err)
	}
}

// TestRunElasticRejectsBadConfig: malformed elastic configs are caller
// errors, not panics deep in the run.
func TestRunElasticRejectsBadConfig(t *testing.T) {
	inst := randomInstance(3, 10, rand.New(rand.NewSource(1)))
	bad := []*elastic.Config{
		{Initial: 5},
		{Min: 3, Max: 2},
		{Initial: 1, Min: 2},
		{WarmUp: -1},
		{Script: []elastic.Event{{At: 1, Delta: 0}}},
		{Script: []elastic.Event{{At: -1, Delta: 1}}},
		{Auto: &elastic.Autoscaler{}},
		{Auto: &elastic.Autoscaler{Guard: overload.NewEstimatorCapacity(4), UpUtil: 0.3, DownUtil: 0.6}},
	}
	for i, ecfg := range bad {
		if _, _, err := RunElastic(inst, EFTRouter{}, nil, RetryPolicy{}, nil, ecfg, nil); err == nil {
			t.Errorf("bad elastic config %d was accepted", i)
		}
	}
}

// FuzzElasticMembership fuzzes scripted churn (random scale events, warm-up
// delays, initial membership) against the no-task-lost contract: every task
// is completed, dropped, rejected or shed — exactly once — and the full
// audit, membership invariants included, stays clean.
func FuzzElasticMembership(f *testing.F) {
	f.Add(int64(1), uint8(6), uint16(120), uint8(2), 0.5, int8(3), int8(-2))
	f.Add(int64(2), uint8(4), uint16(80), uint8(1), 0.0, int8(-1), int8(2))
	f.Add(int64(3), uint8(8), uint16(200), uint8(5), 2.0, int8(-4), int8(4))
	f.Add(int64(4), uint8(3), uint16(50), uint8(3), 1.0, int8(1), int8(1))
	f.Fuzz(func(t *testing.T, seed int64, m uint8, n uint16, initial uint8, warm float64, d1, d2 int8) {
		mm := 2 + int(m)%10
		nn := 1 + int(n)%300
		if !(warm >= 0 && warm < 100) {
			warm = 0
		}
		rng := rand.New(rand.NewSource(seed))
		inst := overloadedInstance(mm, nn, 0.5+rng.Float64(), rng)
		horizon := inst.Tasks[nn-1].Release + 1
		var script []elastic.Event
		for i, d := range []int{int(d1), int(d2)} {
			if d == 0 {
				continue
			}
			at := horizon * core.Time(i+1) / 3
			script = append(script, elastic.Event{At: at, Delta: d})
		}
		ecfg := &elastic.Config{
			Initial: 1 + int(initial)%mm,
			WarmUp:  core.Time(warm),
			Script:  script,
		}
		plan := faults.Generate(mm, horizon, 40, 4, rng)
		s, em, err := RunElastic(inst, EFTRouter{}, plan, RetryPolicy{MaxAttempts: 4}, nil, ecfg, nil)
		if err != nil {
			t.Fatalf("RunElastic: %v", err)
		}
		if got := em.CompletedCount() + em.DroppedCount(); got != nn {
			t.Errorf("dispositions sum to %d for %d tasks", got, nn)
		}
		comps := make([]core.Time, nn)
		for i := range comps {
			comps[i] = inst.Tasks[i].Release + em.Flows[i]
		}
		r := audit.Audit(inst, s, audit.Options{
			Plan:           plan,
			Completions:    comps,
			Dropped:        em.Dropped,
			SkipLowerBound: true,
			Membership:     &audit.MembershipInfo{Membership: em.Membership, Dispatched: em.Dispatched},
		})
		if !r.Ok() {
			t.Errorf("audit: %v", r)
		}
	})
}
