package sim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"flowsched/internal/core"
	"flowsched/internal/elastic"
	"flowsched/internal/faults"
	"flowsched/internal/hedge"
	"flowsched/internal/resilience"
)

// TestRunResilientNilConfigEquivalence is the disabled-path property: for
// every bundled router, random instances, random fault plans, elastic and
// hedge configs, RunResilient with a nil resilience config produces
// byte-identical schedules and metrics to RunHedged — the resilience layer
// must be invisible when off.
func TestRunResilientNilConfigEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1213))
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.Intn(8)
		n := 1 + rng.Intn(150)
		inst := randomInstance(m, n, rng)
		var plan *faults.Plan
		if trial%2 == 1 {
			horizon := inst.Tasks[n-1].Release + 10
			plan = faults.Generate(m, horizon, 20, 5, rand.New(rand.NewSource(int64(trial))))
		}
		var ecfg *elastic.Config
		if trial%3 == 2 {
			mid := inst.Tasks[n/2].Release
			ecfg = &elastic.Config{Initial: 1 + m/2, Script: []elastic.Event{{At: mid, Delta: 1}}}
		}
		var hcfg *hedge.Config
		if trial%4 == 3 {
			hcfg = &hedge.Config{Delay: 1.5, MaxHedges: 5, CancelRunning: trial%8 == 3}
		}
		pol := RetryPolicy{MaxAttempts: 1 + trial%4, Timeout: float64(trial % 3 * 10)}
		for _, kind := range allRouterKinds {
			seed := rng.Int63()
			ra, rb := routerPair(kind, seed)
			s1, m1, err := RunHedged(inst, ra, plan, pol, nil, ecfg, hcfg, nil)
			if err != nil {
				t.Fatalf("trial %d %s: RunHedged: %v", trial, kind, err)
			}
			s2, m2, err := RunResilient(inst, rb, plan, pol, nil, ecfg, hcfg, nil, nil)
			if err != nil {
				t.Fatalf("trial %d %s: RunResilient: %v", trial, kind, err)
			}
			if !reflect.DeepEqual(s1.Machine, s2.Machine) || !sameTimes(s1.Start, s2.Start) {
				t.Fatalf("trial %d %s: schedules differ with nil resilience config", trial, kind)
			}
			if !sameTimes(m1.Flows, m2.Flows) || !sameTimes(m1.Stretches, m2.Stretches) ||
				!sameTimes(m1.Busy, m2.Busy) || m1.Makespan != m2.Makespan ||
				!reflect.DeepEqual(m1.Attempts, m2.Attempts) ||
				!reflect.DeepEqual(m1.Dropped, m2.Dropped) ||
				!reflect.DeepEqual(m1.Parked, m2.Parked) ||
				m1.Handoffs != m2.Handoffs || m1.HedgesIssued != m2.HedgesIssued {
				t.Fatalf("trial %d %s: metrics differ with nil resilience config", trial, kind)
			}
			if m2.BudgetDropped != nil || m2.ProbeDispatch != nil || m2.BreakerSpans != nil {
				t.Fatalf("trial %d %s: nil config allocated resilience state", trial, kind)
			}
			if m2.RetriesRequested != 0 || m2.RetriesIssued != 0 || m2.RetriesDropped != 0 ||
				m2.BreakerOpens != 0 || m2.BreakerCloses != 0 || m2.BreakerProbes != 0 {
				t.Fatalf("trial %d %s: nil config reported resilience activity", trial, kind)
			}
		}
	}
}

// TestRunResilientNilConfigAllocs pins the zero-overhead contract: the
// disabled resilience path adds no allocations over RunHedged.
func TestRunResilientNilConfigAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := randomInstance(8, 2000, rng)
	plan := faults.Empty(8).Down(0, 5, 50).Down(3, 20, 80)
	pol := RetryPolicy{MaxAttempts: 3}
	if _, _, err := RunResilient(inst, EFTRouter{}, plan, pol, nil, nil, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	base := testing.AllocsPerRun(10, func() {
		if _, _, err := RunHedged(inst, EFTRouter{}, plan, pol, nil, nil, nil, nil); err != nil {
			t.Fatal(err)
		}
	})
	rs := testing.AllocsPerRun(10, func() {
		if _, _, err := RunResilient(inst, EFTRouter{}, plan, pol, nil, nil, nil, nil, nil); err != nil {
			t.Fatal(err)
		}
	})
	if rs > base {
		t.Errorf("nil-config RunResilient allocates %v per run vs %v for RunHedged: the disabled path leaks", rs, base)
	}
}

// TestRetryPolicyValidate covers the policy surface: documented zero values
// pass, and the retry-storm foot-guns — most importantly a BackoffFactor in
// (0, 1), which would shrink the delay per attempt — are rejected.
func TestRetryPolicyValidate(t *testing.T) {
	valid := []RetryPolicy{
		{},
		{MaxAttempts: 3, Backoff: 1, BackoffFactor: 2, Timeout: 50},
		{Backoff: 0.5},                  // constant backoff, factor 0
		{Backoff: 0.5, BackoffFactor: 1}, // constant backoff, factor 1
	}
	for _, p := range valid {
		if err := p.Validate(); err != nil {
			t.Errorf("policy %+v rejected: %v", p, err)
		}
	}
	invalid := []RetryPolicy{
		{MaxAttempts: -1},
		{Backoff: -1},
		{Backoff: core.Time(math.NaN())},
		{Backoff: core.Time(math.Inf(1))},
		{BackoffFactor: -2},
		{BackoffFactor: math.NaN()},
		{BackoffFactor: math.Inf(1)},
		{BackoffFactor: 0.5}, // the headline case: shrinking "backoff"
		{Timeout: -1},
		{Timeout: core.Time(math.NaN())},
	}
	for _, p := range invalid {
		if err := p.Validate(); err == nil {
			t.Errorf("policy %+v accepted, want rejection", p)
		}
	}
}

// TestBreakerOpenSoleMemberParks: a task whose only eligible server sits
// behind an open breaker parks (it does not livelock retrying into the open
// breaker) and wakes when the cooldown expires — the half-open probe then
// closes the breaker and the task completes.
func TestBreakerOpenSoleMemberParks(t *testing.T) {
	inst := core.NewInstance(2, []core.Task{
		{Release: 0, Proc: 2, Set: core.ProcSet{0}},
	})
	plan := faults.Empty(2).Down(0, 1, 2)
	rcfg := &resilience.Config{
		Breaker: &resilience.BreakerConfig{
			Window: 1, FailureThreshold: 1, Cooldown: 10, HalfOpenProbes: 1,
		},
	}
	s, em, err := RunResilient(inst, EFTRouter{}, plan, RetryPolicy{}, nil, nil, nil, rcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The attempt on [0, 2) is crashed at t=1 and opens the breaker (window
	// 1, threshold 1). The immediate retry finds the server down, parks; the
	// t=2 restore wakes it into the open breaker, which parks it again; the
	// cooldown expires at t=11, the wake dispatches the half-open probe over
	// [11, 13) and its success closes the breaker.
	if s.Machine[0] != 0 || s.Start[0] != 11 {
		t.Fatalf("task ran on M%d at %v, want M0 at 11", s.Machine[0], s.Start[0])
	}
	if !em.Parked[0] || em.Dropped[0] {
		t.Fatalf("dispositions parked=%v dropped=%v, want parked, not dropped", em.Parked[0], em.Dropped[0])
	}
	if em.Attempts[0] != 2 {
		t.Fatalf("attempts %d, want 2", em.Attempts[0])
	}
	if em.BreakerOpens != 1 || em.BreakerCloses != 1 || em.BreakerProbes != 1 {
		t.Fatalf("breaker counters opens=%d closes=%d probes=%d, want 1/1/1",
			em.BreakerOpens, em.BreakerCloses, em.BreakerProbes)
	}
	if !em.ProbeDispatch[0] {
		t.Fatal("completing dispatch not marked as a probe")
	}
	if len(em.BreakerSpans) != 1 {
		t.Fatalf("%d breaker spans, want 1", len(em.BreakerSpans))
	}
	sp := em.BreakerSpans[0]
	if sp.Server != 0 || sp.OpenedAt != 1 || sp.HalfOpenAt != 11 || sp.EndedAt != 13 || !sp.Closed {
		t.Fatalf("span %+v, want M0 open 1, half-open 11, closed at 13", sp)
	}
	if em.Makespan != 13 {
		t.Fatalf("makespan %v, want 13", em.Makespan)
	}
}

// TestRetryBudgetExhaustionZoneOutage: a correlated outage of every server
// floods the requeue path; the retry budget admits only what its bucket
// holds and drops the rest with the BudgetDropped disposition — never
// parking them forever — and the conservation equation holds exactly.
func TestRetryBudgetExhaustionZoneOutage(t *testing.T) {
	inst := core.NewInstance(2, []core.Task{
		{Release: 0, Proc: 10},
		{Release: 0, Proc: 10},
		{Release: 0, Proc: 10},
		{Release: 0, Proc: 10},
	})
	plan := faults.Empty(2).Down(0, 1, 50).Down(1, 1, 50)
	rcfg := &resilience.Config{RetryBudget: 0.25, BudgetBurst: 2}
	_, em, err := RunResilient(inst, EFTRouter{}, plan, RetryPolicy{}, nil, nil, nil, rcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Four first attempts refill 4×0.25 tokens into a bucket already capped
	// at its burst of 2. The t=1 outage aborts all four; the first two
	// retries spend the bucket, the last two are over budget and drop.
	if em.RetriesRequested != 4 || em.RetriesIssued != 2 || em.RetriesDropped != 2 {
		t.Fatalf("retry ledger requested=%d issued=%d dropped=%d, want 4/2/2",
			em.RetriesRequested, em.RetriesIssued, em.RetriesDropped)
	}
	if em.RetriesIssued+em.RetriesDropped != em.RetriesRequested {
		t.Fatal("conservation violated")
	}
	budgetDropped, dropped := 0, 0
	for i := range inst.Tasks {
		if em.BudgetDropped[i] {
			budgetDropped++
			if !em.Dropped[i] {
				t.Fatalf("task %d budget-dropped but not dropped", i)
			}
		}
		if em.Dropped[i] {
			dropped++
		}
	}
	if budgetDropped != 2 || dropped != 2 {
		t.Fatalf("budgetDropped=%d dropped=%d, want 2/2", budgetDropped, dropped)
	}
	// The two issued retries park through the outage and complete after the
	// t=50 recovery.
	completed := 0
	for i := range inst.Tasks {
		if !em.Dropped[i] {
			completed++
			if em.Flows[i] <= 50 {
				t.Fatalf("task %d flow %v, want completion after the recovery", i, em.Flows[i])
			}
		}
	}
	if completed != 2 {
		t.Fatalf("%d tasks completed, want 2", completed)
	}
}

// TestBreakerProbeRacingHedgeCopy: a half-open probe crawls on a gray-slow
// server, its hedge copy wins on a healthy one, and the cancelled probe
// refunds its slot without recording an outcome — the breaker keeps its
// half-open episode open rather than booking a phantom close.
func TestBreakerProbeRacingHedgeCopy(t *testing.T) {
	inst := core.NewInstance(2, []core.Task{
		{Release: 0, Proc: 10, Set: core.ProcSet{0, 1}},
		{Release: 0, Proc: 2, Set: core.ProcSet{1}},
	})
	plan := faults.Empty(2).Down(0, 1, 1.5).Slow(0, 4, 100, 5)
	hcfg := &hedge.Config{Delay: 2, CancelRunning: true}
	rcfg := &resilience.Config{
		Breaker: &resilience.BreakerConfig{
			Window: 1, FailureThreshold: 1, Cooldown: 2, HalfOpenProbes: 1,
		},
	}
	pol := RetryPolicy{Backoff: 3}
	s, em, err := RunResilient(inst, EFTRouter{}, plan, pol, nil, nil, hcfg, rcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Task 0 runs on M0 from 0, crashes at 1, opens the breaker. The hedge
	// was armed off the first dispatch, so the copy fires at t=2 and runs on
	// M1 over [2, 12). Meanwhile the cooldown expires at 3 and the backoff-3
	// retry at t=4 dispatches as the half-open probe — but the gray window
	// slows it 5× (done at 54). The copy wins at 12; cancelling the primary
	// refunds the probe slot with no outcome.
	if s.Machine[0] != 1 {
		t.Fatalf("task 0 on M%d, want the copy's M1", s.Machine[0])
	}
	if em.Flows[0] != 12 {
		t.Fatalf("task 0 flow %v, want 12", em.Flows[0])
	}
	if em.HedgeWinsCopy != 1 {
		t.Fatalf("copy wins %d, want 1", em.HedgeWinsCopy)
	}
	if em.BreakerOpens != 1 || em.BreakerCloses != 0 || em.BreakerProbes != 1 {
		t.Fatalf("breaker counters opens=%d closes=%d probes=%d, want 1/0/1",
			em.BreakerOpens, em.BreakerCloses, em.BreakerProbes)
	}
	if em.ProbeDispatch[0] {
		t.Fatal("cancelled probe kept its probe flag: the refund did not clear it")
	}
	if len(em.BreakerSpans) != 1 {
		t.Fatalf("%d breaker spans, want 1", len(em.BreakerSpans))
	}
	sp := em.BreakerSpans[0]
	if sp.Closed || !math.IsNaN(float64(sp.EndedAt)) {
		t.Fatalf("span %+v: an outcome-less cancelled probe must not settle the episode", sp)
	}
	if em.Dropped[0] || em.Dropped[1] {
		t.Fatal("no task should be dropped")
	}
}

// TestBreakerProbeRacingScaleDownDrain: an elastic scale-down drains a
// server holding a queued half-open probe. The probe hands off through the
// normal dispatch path, refunding its slot; no task is lost and no breaker
// accounting leaks.
func TestBreakerProbeRacingScaleDownDrain(t *testing.T) {
	inst := core.NewInstance(2, []core.Task{
		{Release: 0, Proc: 20, Set: core.ProcSet{0}},
		{Release: 0, Proc: 1, Set: core.ProcSet{0, 1}},
		{Release: 0, Proc: 2, Set: core.ProcSet{0, 1}},
		{Release: 0.6, Proc: 10, Set: core.ProcSet{1}},
	})
	plan := faults.Empty(2).Down(1, 0.5, 0.6)
	ecfg := &elastic.Config{Initial: 2, Script: []elastic.Event{{At: 5, Delta: -1}}}
	rcfg := &resilience.Config{
		Breaker: &resilience.BreakerConfig{
			Window: 1, FailureThreshold: 1, Cooldown: 1, HalfOpenProbes: 2,
		},
	}
	pol := RetryPolicy{Backoff: 2}
	s, em, err := RunResilient(inst, EFTRouter{}, plan, pol, nil, ecfg, nil, rcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// M1 crashes on [0.5, 0.6), opening its breaker; the half-open window at
	// 1.5 admits the parked task 3 as the first probe, and one of the
	// backoff-2 retries at t=2.5 queues as the second. The t=5 scale-down
	// drains M1: the running probe finishes in place (closing the breaker at
	// 11.5), the queued one hands off to M0 with its slot refunded.
	for i := range inst.Tasks {
		if s.Machine[i] < 0 || em.Dropped[i] {
			t.Fatalf("task %d lost to the drain: machine=%d dropped=%v", i, s.Machine[i], em.Dropped[i])
		}
	}
	if em.ScaleDowns != 1 {
		t.Fatalf("scale-downs %d, want 1", em.ScaleDowns)
	}
	if em.Handoffs == 0 {
		t.Fatal("the drained queue produced no handoffs")
	}
	if em.BreakerOpens != 1 || em.BreakerProbes != 2 {
		t.Fatalf("breaker counters opens=%d probes=%d, want 1 open and 2 probes", em.BreakerOpens, em.BreakerProbes)
	}
	if em.BreakerCloses != 1 {
		t.Fatalf("breaker closes %d, want 1 (the in-place probe's success)", em.BreakerCloses)
	}
	if em.RetriesRequested != em.RetriesIssued || em.RetriesDropped != 0 {
		t.Fatalf("unbudgeted run mutated the budget ledger: %d/%d/%d",
			em.RetriesRequested, em.RetriesIssued, em.RetriesDropped)
	}
}
