package sim

import (
	"math"

	"flowsched/internal/core"
	"flowsched/internal/elastic"
	"flowsched/internal/eventq"
	"flowsched/internal/resilience"
)

// Arena owns every per-run buffer of the unified engine (elasticsim.go): the
// router-visible State, the schedule's assignment arrays, all metrics slices,
// the per-task attempt/generation/re-timing state, the per-server FIFOs
// (fifoQueues — an index-chained freelist, not [][]int), both event queues,
// the parked-task buffers and the overload/elastic runtime scratch. A fresh
// run allocates all of this (~2,400 allocations for a 5,000-task instance,
// almost all of it FIFO append traffic); running through a reused Arena
// reslices it instead, taking the steady-state cost to a handful of
// allocations per run (pinned by TestRunFaultyAllocs and friends, gated by
// the SimRun*Steady benchreg entries).
//
// Ownership contract: the *core.Schedule and *ElasticMetrics returned by an
// Arena's Run methods point INTO the arena. They are valid until the arena's
// next Run call, which recycles them in place. Callers that need results to
// outlive the next run must copy what they keep — or use the package-level
// Run functions, which give every call a private arena.
//
// An Arena is not safe for concurrent use; parallel trial loops keep one per
// worker (internal/chaos and internal/experiments use a sync.Pool).
type Arena struct {
	st State

	// Schedule backing (sched.Machine/sched.Start alias machine/start).
	machine []int
	start   []core.Time
	sched   core.Schedule

	// Metrics backing. The metrics value is rebuilt per run; the slices are
	// recycled. rejected/shedded/reason attach only on guarded runs,
	// dispatched only on elastic runs — disabled layers keep their nil
	// fields, exactly as a fresh run would.
	metrics    ElasticMetrics
	flows      []core.Time
	stretches  []core.Time
	busy       []core.Time
	attempts   []int
	dropped    []bool
	parkedBits []bool
	releases   []core.Time
	downtime   []core.Time
	rejected   []bool
	shedded    []bool
	reason     []string
	dispatched core.Times

	// Engine state.
	live     []bool
	gen      []int
	curStart []core.Time
	curEnd   []core.Time
	busyAdd  []core.Time
	fq       fifoQueues
	parked   []int // requests waiting for any replica to recover
	wake     []int // swap buffer for wakeAll / restore

	completions eventq.Queue[compEvent]
	events      eventq.Queue[faultEvent]

	liveBuf core.ProcSet // dispatch-time live-subset scratch

	// Overload / elastic / hedge / resilience runtimes (their scratch slices
	// are recycled via the struct fields; see the cfg/ecfg/hcfg/rcfg setup
	// blocks in elasticsim.go).
	ov         ovRun
	el         elRun
	hd         hdRun
	rs         rsRun
	membership elastic.Membership
	ctrl       elastic.Controller
	breakers   resilience.Breakers
}

// NewArena returns an empty arena. The first run sizes it; later runs of the
// same shape reuse every buffer.
func NewArena() *Arena { return &Arena{} }

// Reset prepares the arena for a run of n tasks on m machine slots: every
// size-dependent buffer is resliced (reallocating only when capacity is
// short) and reinitialized to its fresh-run state. The Run methods call it
// internally; it is exported so callers sizing an arena ahead of a batch can
// pre-grow it once.
func (a *Arena) Reset(n, m int) {
	a.st.Now = 0
	a.st.M = m
	a.st.Completion = resliceZero(a.st.Completion, m)
	a.st.QueueLen = resliceZero(a.st.QueueLen, m)

	a.machine = grow(a.machine, n)
	a.start = grow(a.start, n)
	for i := 0; i < n; i++ {
		a.machine[i] = -1
		a.start[i] = math.NaN()
	}

	a.flows = resliceZero(a.flows, n)
	a.stretches = resliceZero(a.stretches, n)
	a.busy = resliceZero(a.busy, m)
	a.attempts = resliceZero(a.attempts, n)
	a.dropped = resliceZero(a.dropped, n)
	a.parkedBits = resliceZero(a.parkedBits, n)
	a.releases = grow(a.releases, n) // filled from the instance before use

	a.live = grow(a.live, m)
	for j := 0; j < m; j++ {
		a.live[j] = true
	}
	a.gen = resliceZero(a.gen, n)
	a.curStart = resliceZero(a.curStart, n)
	a.curEnd = resliceZero(a.curEnd, n)
	a.busyAdd = resliceZero(a.busyAdd, n)
	a.fq.reset(n, m)
	a.parked = a.parked[:0]
	a.wake = a.wake[:0]

	a.completions.Clear()
	a.events.Clear()

	if cap(a.liveBuf) < m {
		a.liveBuf = make(core.ProcSet, 0, m)
	}
}

// grow reslices buf to n elements, reallocating only when its capacity is
// short. Contents are unspecified; callers overwrite every element (or use
// resliceZero).
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// resliceZero reslices buf to n zeroed elements without reallocating when
// capacity allows.
func resliceZero[T any](buf []T, n int) []T {
	buf = grow(buf, n)
	var zero T
	for i := range buf {
		buf[i] = zero
	}
	return buf
}

// fifoQueues is the per-server FIFO freelist: every task sits in at most one
// server queue at a time, so a single task-indexed successor array plus
// per-server head/tail cursors represent all m queues with zero per-operation
// allocation — replacing the [][]int slices whose append/shrink churn
// dominated the robustness paths' allocation counts.
type fifoQueues struct {
	next []int // task id → next task in its queue (−1 = last)
	head []int // server → first queued task (−1 = empty)
	tail []int // server → last queued task (−1 = empty)
}

// reset prepares the freelist for n tasks on m servers. next needs no
// clearing: a task's link is written by push before it can be read.
func (f *fifoQueues) reset(n, m int) {
	f.next = grow(f.next, n)
	f.head = grow(f.head, m)
	f.tail = grow(f.tail, m)
	for j := 0; j < m; j++ {
		f.head[j] = -1
		f.tail[j] = -1
	}
}

// push appends task id to server j's queue.
func (f *fifoQueues) push(j, id int) {
	f.next[id] = -1
	if t := f.tail[j]; t >= 0 {
		f.next[t] = id
	} else {
		f.head[j] = id
	}
	f.tail[j] = id
}

// popHead removes and returns server j's queue head (the queue must be
// non-empty).
func (f *fifoQueues) popHead(j int) int {
	id := f.head[j]
	h := f.next[id]
	f.head[j] = h
	if h < 0 {
		f.tail[j] = -1
	}
	return id
}

// remove unlinks task id from anywhere in server j's queue, preserving the
// order of the rest. A task not actually queued on j is a no-op (the
// defensive mid-queue path of drain).
func (f *fifoQueues) remove(j, id int) {
	prev := f.head[j]
	if prev == id {
		f.popHead(j)
		return
	}
	for prev >= 0 && f.next[prev] != id {
		prev = f.next[prev]
	}
	if prev < 0 {
		return
	}
	f.next[prev] = f.next[id]
	if f.tail[j] == id {
		f.tail[j] = prev
	}
}

// takeAll empties server j's queue and returns its former head; the caller
// walks the chain via next. Capture next[id] before re-dispatching id — a
// dispatch relinks it.
func (f *fifoQueues) takeAll(j int) int {
	h := f.head[j]
	f.head[j] = -1
	f.tail[j] = -1
	return h
}
