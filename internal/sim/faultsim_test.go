package sim

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"flowsched/internal/core"
	"flowsched/internal/faults"
	"flowsched/internal/sched"
)

// randomInstance draws an instance with Poisson-ish arrivals, mixed
// processing times and random non-empty processing sets.
func randomInstance(m, n int, rng *rand.Rand) *core.Instance {
	tasks := make([]core.Task, n)
	t := 0.0
	for i := range tasks {
		t += rng.ExpFloat64() / float64(m)
		proc := 0.5 + rng.Float64()
		var set core.ProcSet
		switch rng.Intn(3) {
		case 0: // unrestricted
		case 1: // ring interval
			set = core.MustRingInterval(rng.Intn(m), 1+rng.Intn(m), m)
		default: // random subset
			k := 1 + rng.Intn(m)
			perm := rng.Perm(m)[:k]
			set = core.NewProcSet(perm...)
		}
		tasks[i] = core.Task{Release: t, Proc: proc, Set: set, Key: i % m}
	}
	return core.NewInstance(m, tasks)
}

// routerPair builds two independent but identically seeded routers of the
// named kind, so a Run and a RunFaulty consume identical random streams.
func routerPair(kind string, seed int64) (Router, Router) {
	mk := func() Router {
		switch kind {
		case "EFT-Min":
			return EFTRouter{}
		case "EFT-Max":
			return EFTRouter{Tie: sched.MaxTie{}}
		case "JSQ":
			return JSQRouter{}
		case "Random":
			return &RandomRouter{Rng: rand.New(rand.NewSource(seed))}
		case "Po2":
			return PowerOfTwoRouter{Rng: rand.New(rand.NewSource(seed))}
		case "RR":
			return &RoundRobinRouter{}
		case "EFT-noisy":
			return &NoisyEFTRouter{RelErr: 0.3, Rng: rand.New(rand.NewSource(seed))}
		}
		panic("unknown router kind " + kind)
	}
	return mk(), mk()
}

var allRouterKinds = []string{"EFT-Min", "EFT-Max", "JSQ", "Random", "Po2", "RR", "EFT-noisy"}

// TestRunFaultyEmptyPlanEquivalence is the zero-fault property: for every
// bundled router and ≥20 random instances, RunFaulty under the empty plan
// produces byte-identical schedules and metrics to Run.
func TestRunFaultyEmptyPlanEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 24; trial++ {
		m := 2 + rng.Intn(8)
		n := 1 + rng.Intn(120)
		inst := randomInstance(m, n, rng)
		for _, kind := range allRouterKinds {
			seed := rng.Int63()
			ra, rb := routerPair(kind, seed)
			s1, m1, err := Run(inst, ra)
			if err != nil {
				t.Fatalf("trial %d %s: Run: %v", trial, kind, err)
			}
			for _, plan := range []*faults.Plan{nil, faults.Empty(m)} {
				s2, m2, err := RunFaulty(inst, rb, plan, RetryPolicy{})
				if err != nil {
					t.Fatalf("trial %d %s: RunFaulty: %v", trial, kind, err)
				}
				if !reflect.DeepEqual(s1.Machine, s2.Machine) || !reflect.DeepEqual(s1.Start, s2.Start) {
					t.Fatalf("trial %d %s: schedules differ", trial, kind)
				}
				if !reflect.DeepEqual(m1.Flows, m2.Flows) ||
					!reflect.DeepEqual(m1.Stretches, m2.Stretches) ||
					!reflect.DeepEqual(m1.Busy, m2.Busy) ||
					m1.Makespan != m2.Makespan {
					t.Fatalf("trial %d %s: metrics differ", trial, kind)
				}
				if m2.DroppedCount() != 0 || m2.ParkedCount() != 0 || m2.TotalRetries() != 0 {
					t.Fatalf("trial %d %s: healthy run reported faults", trial, kind)
				}
				if m2.Availability() != 1 {
					t.Fatalf("trial %d %s: healthy availability %v", trial, kind, m2.Availability())
				}
				// Reset rb's random stream for the second plan variant.
				_, rb = routerPair(kind, seed)
			}
		}
	}
}

// TestFailoverToLiveReplica: the chosen server fails mid-service and the
// request restarts on the other replica from scratch.
func TestFailoverToLiveReplica(t *testing.T) {
	inst := core.NewInstance(2, []core.Task{
		{Release: 0, Proc: 10, Set: core.NewProcSet(0, 1)},
	})
	plan := faults.Empty(2).Down(0, 5, 100)
	s, m, err := RunFaulty(inst, EFTRouter{}, plan, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Machine[0] != 1 {
		t.Fatalf("task should have failed over to M2, got M%d", s.Machine[0]+1)
	}
	if s.Start[0] != 5 {
		t.Fatalf("failover start = %v, want 5", s.Start[0])
	}
	if m.Flows[0] != 15 {
		t.Fatalf("flow = %v, want 15 (5 wasted + 10 redone)", m.Flows[0])
	}
	if m.Attempts[0] != 2 || m.TotalRetries() != 1 {
		t.Fatalf("attempts = %v, want 2", m.Attempts[0])
	}
	if m.Busy[0] != 5 { // partial work until the crash
		t.Fatalf("Busy[0] = %v, want 5", m.Busy[0])
	}
	if m.Busy[1] != 10 {
		t.Fatalf("Busy[1] = %v, want 10", m.Busy[1])
	}
	if m.Makespan != 15 {
		t.Fatalf("makespan = %v, want 15", m.Makespan)
	}
	if m.Downtime[0] != 95 { // horizon is plan end (100) here
		t.Fatalf("downtime[0] = %v, want 95", m.Downtime[0])
	}
}

// TestArrivalDuringOutageAvoidsDeadServer: the router never sees the dead
// replica, so EFT lands every request on the live one.
func TestArrivalDuringOutageAvoidsDeadServer(t *testing.T) {
	inst := core.NewInstance(2, []core.Task{
		{Release: 1, Proc: 1, Set: core.NewProcSet(0, 1)},
		{Release: 2, Proc: 1, Set: core.NewProcSet(0, 1)},
	})
	plan := faults.Empty(2).Down(0, 0, 50)
	s, m, err := RunFaulty(inst, EFTRouter{}, plan, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Machine {
		if s.Machine[i] != 1 {
			t.Fatalf("task %d routed to dead server", i)
		}
	}
	if m.TotalRetries() != 0 {
		t.Fatal("no retries expected: requests never touched the dead server")
	}
}

// TestParkedUntilRecovery: a request whose whole set is down waits for the
// first replica to come back.
func TestParkedUntilRecovery(t *testing.T) {
	inst := core.NewInstance(3, []core.Task{
		{Release: 2, Proc: 4, Set: core.NewProcSet(0, 1)},
	})
	plan := faults.Empty(3).Down(0, 0, 10).Down(1, 0, 20)
	s, m, err := RunFaulty(inst, EFTRouter{}, plan, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Parked[0] || m.ParkedCount() != 1 {
		t.Fatal("request should have been parked")
	}
	if s.Machine[0] != 0 || s.Start[0] != 10 {
		t.Fatalf("parked request should start on M1 at its recovery (got M%d at %v)",
			s.Machine[0]+1, s.Start[0])
	}
	if m.Flows[0] != 12 { // waited 2..10, served 10..14
		t.Fatalf("flow = %v, want 12", m.Flows[0])
	}
	if m.Dropped[0] {
		t.Fatal("parked request should not be dropped")
	}
}

// TestDropAfterMaxAttempts: two successive crashes exhaust a 2-attempt
// budget.
func TestDropAfterMaxAttempts(t *testing.T) {
	inst := core.NewInstance(2, []core.Task{
		{Release: 0, Proc: 10, Set: core.NewProcSet(0, 1)},
	})
	plan := faults.Empty(2).Down(0, 2, 100).Down(1, 6, 100)
	s, m, err := RunFaulty(inst, EFTRouter{}, plan, RetryPolicy{MaxAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Dropped[0] || m.DroppedCount() != 1 || m.DropRate() != 1 {
		t.Fatal("request should have been dropped after 2 attempts")
	}
	if m.Flows[0] != 6 { // gave up at the second crash
		t.Fatalf("drop latency = %v, want 6", m.Flows[0])
	}
	if s.Machine[0] != -1 || !math.IsNaN(s.Start[0]) {
		t.Fatal("dropped request should be unassigned in the schedule")
	}
	if m.Attempts[0] != 2 {
		t.Fatalf("attempts = %d, want 2", m.Attempts[0])
	}
}

// TestBackoffDelaysRetry: with base backoff 3 the failover dispatch happens
// 3 time units after the crash.
func TestBackoffDelaysRetry(t *testing.T) {
	inst := core.NewInstance(2, []core.Task{
		{Release: 0, Proc: 10, Set: core.NewProcSet(0, 1)},
	})
	plan := faults.Empty(2).Down(0, 5, 100)
	s, m, err := RunFaulty(inst, EFTRouter{}, plan, RetryPolicy{Backoff: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Machine[0] != 1 || s.Start[0] != 8 {
		t.Fatalf("retry should start on M2 at 8 (crash 5 + backoff 3), got M%d at %v",
			s.Machine[0]+1, s.Start[0])
	}
	if m.Flows[0] != 18 {
		t.Fatalf("flow = %v, want 18", m.Flows[0])
	}
}

// TestExponentialBackoff: delays double per attempt.
func TestExponentialBackoff(t *testing.T) {
	p := RetryPolicy{Backoff: 2, BackoffFactor: 2}
	for attempts, want := range map[int]core.Time{1: 2, 2: 4, 3: 8} {
		if got := p.delay(attempts); got != want {
			t.Errorf("delay(%d) = %v, want %v", attempts, got, want)
		}
	}
	if got := (RetryPolicy{}).delay(5); got != 0 {
		t.Errorf("zero policy delay = %v, want 0", got)
	}
}

// TestTimeoutDropsOldRequests: a crash at age 5 with timeout 4 drops the
// request instead of retrying.
func TestTimeoutDropsOldRequests(t *testing.T) {
	inst := core.NewInstance(2, []core.Task{
		{Release: 0, Proc: 10, Set: core.NewProcSet(0, 1)},
	})
	plan := faults.Empty(2).Down(0, 5, 100)
	_, m, err := RunFaulty(inst, EFTRouter{}, plan, RetryPolicy{Timeout: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Dropped[0] {
		t.Fatal("request older than the timeout should be dropped at failover")
	}
	// With a generous timeout it survives.
	_, m, err = RunFaulty(inst, EFTRouter{}, plan, RetryPolicy{Timeout: 100})
	if err != nil {
		t.Fatal(err)
	}
	if m.Dropped[0] {
		t.Fatal("request within the timeout should fail over")
	}
}

// TestQueuedRequestsRequeuedOnCrash: a crash loses the whole local queue,
// not just the running request.
func TestQueuedRequestsRequeuedOnCrash(t *testing.T) {
	inst := core.NewInstance(2, []core.Task{
		{Release: 0, Proc: 4, Set: core.NewProcSet(0)},
		{Release: 0, Proc: 4, Set: core.NewProcSet(0, 1)},
		{Release: 0, Proc: 4, Set: core.NewProcSet(0, 1)},
	})
	// EFT sends task 0 to M1 (pinned), task 1 to M2, task 2 to M1 (queue
	// 4 vs 4, Min tie) — so M1 holds tasks 0 (running) and 2 (queued).
	plan := faults.Empty(2).Down(0, 1, 100)
	s, m, err := RunFaulty(inst, EFTRouter{}, plan, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Parked[0] {
		t.Fatal("pinned task 0 should park when its only server dies")
	}
	if s.Machine[2] != 1 {
		t.Fatal("queued task 2 should fail over to M2")
	}
	if m.Attempts[2] != 2 {
		t.Fatalf("task 2 attempts = %d, want 2", m.Attempts[2])
	}
	// M2's queue after the crash: task 1 [0,4), then task 2 [4,8).
	if s.Start[2] != 4 || m.Flows[2] != 8 {
		t.Fatalf("task 2 start/flow = %v/%v, want 4/8", s.Start[2], m.Flows[2])
	}
	// Task 0 parks until M1 recovers at 100.
	if s.Start[0] != 100 || m.Flows[0] != 104 {
		t.Fatalf("task 0 start/flow = %v/%v, want 100/104", s.Start[0], m.Flows[0])
	}
}

// TestRecoverySpikeMaxFlow: only requests released in outage/recovery
// windows count toward the spike.
func TestRecoverySpikeMaxFlow(t *testing.T) {
	inst := core.NewInstance(2, []core.Task{
		{Release: 0, Proc: 1, Set: core.NewProcSet(0, 1)},   // pre-outage
		{Release: 11, Proc: 10, Set: core.NewProcSet(0, 1)}, // during outage
		{Release: 300, Proc: 1, Set: core.NewProcSet(0, 1)}, // long after
	})
	plan := faults.Empty(2).Down(0, 10, 20).Down(1, 10, 20)
	_, m, err := RunFaulty(inst, EFTRouter{}, plan, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// Task 1 parks until t=20 and completes at 30: flow 19.
	if got := m.RecoverySpikeMaxFlow(5); got != 19 {
		t.Fatalf("spike max flow = %v, want 19", got)
	}
	// A window of 0 still covers releases strictly inside the outage.
	if got := m.RecoverySpikeMaxFlow(0); got != 19 {
		t.Fatalf("spike max flow (window 0) = %v, want 19", got)
	}
	if mf := m.MaxFlow(); mf != 19 {
		t.Fatalf("max flow = %v, want 19", mf)
	}
	if q := m.SpikeQuantile(5, 1); q != 19 {
		t.Fatalf("spike quantile = %v, want 19", q)
	}
}

// TestRunFaultyRejects: invalid plans, mismatched m, bad routers.
func TestRunFaultyRejects(t *testing.T) {
	inst := core.NewInstance(2, []core.Task{{Release: 0, Proc: 1}})
	if _, _, err := RunFaulty(inst, EFTRouter{}, faults.Empty(3), RetryPolicy{}); err == nil {
		t.Error("plan/instance m mismatch accepted")
	}
	bad := faults.Empty(2).Down(5, 0, 1)
	if _, _, err := RunFaulty(inst, EFTRouter{}, bad, RetryPolicy{}); err == nil {
		t.Error("invalid plan accepted")
	}
	if _, _, err := RunFaulty(inst, stuckRouter{}, faults.Empty(2).Down(0, 0, 1), RetryPolicy{}); err == nil {
		t.Error("router picking a dead/ineligible server accepted")
	}
}

// stuckRouter always answers server 0, even when it is dead.
type stuckRouter struct{}

func (stuckRouter) Name() string               { return "stuck" }
func (stuckRouter) Pick(*State, core.Task) int { return 0 }

// TestRouterReuseAcrossRuns is the regression test for stateful routers:
// before Reset existed, reusing a RoundRobin or NoisyEFT router across runs
// silently produced different (wrong) schedules on the second run.
func TestRouterReuseAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := randomInstance(4, 60, rng)
	t.Run("RoundRobin", func(t *testing.T) {
		r := &RoundRobinRouter{}
		s1, _, err := Run(inst, r)
		if err != nil {
			t.Fatal(err)
		}
		s2, _, err := Run(inst, r) // reused, stale cursor
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(s1.Machine, s2.Machine) {
			t.Fatal("reused RoundRobinRouter diverged: stale cursor not reset")
		}
	})
	t.Run("Random", func(t *testing.T) {
		// Before Seed+Reset existed, a reused seeded RandomRouter kept
		// consuming its stream and the second run silently diverged (and the
		// zero value panicked on a nil Rng).
		r := &RandomRouter{Seed: 3}
		s1, _, err := Run(inst, r)
		if err != nil {
			t.Fatal(err)
		}
		s2, _, err := Run(inst, r) // reused, stale stream position
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(s1.Machine, s2.Machine) {
			t.Fatal("reused RandomRouter diverged: stream not rewound to Seed")
		}
	})
	t.Run("NoisyEFT", func(t *testing.T) {
		mk := func() *NoisyEFTRouter {
			return &NoisyEFTRouter{RelErr: 0.2, Rng: rand.New(rand.NewSource(9))}
		}
		r := mk()
		s1, _, err := Run(inst, r)
		if err != nil {
			t.Fatal(err)
		}
		r.Rng = rand.New(rand.NewSource(9)) // same noise stream, stale beliefs
		s2, _, err := Run(inst, r)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(s1.Machine, s2.Machine) {
			t.Fatal("reused NoisyEFTRouter diverged: stale beliefs not reset")
		}
	})
}

// TestStretchGuard: zero or negative processing times do not poison the
// stretch aggregate with Inf/NaN.
func TestStretchGuard(t *testing.T) {
	if got := stretchOf(5, 0); got != 0 {
		t.Errorf("stretchOf(5, 0) = %v, want 0", got)
	}
	if got := stretchOf(5, -1); got != 0 {
		t.Errorf("stretchOf(5, -1) = %v, want 0", got)
	}
	if got := stretchOf(6, 2); got != 3 {
		t.Errorf("stretchOf(6, 2) = %v, want 3", got)
	}
}

// TestFaultyRunsAreDeterministic: the same instance, plan and seeds give
// identical faulty runs — the property the dump/replay CLI path relies on.
func TestFaultyRunsAreDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inst := randomInstance(6, 200, rng)
	plan := faults.Generate(6, inst.Tasks[inst.N()-1].Release, 20, 5, rand.New(rand.NewSource(2)))
	policy := RetryPolicy{MaxAttempts: 4, Backoff: 0.5, BackoffFactor: 2, Timeout: 50}
	run := func() (*core.Schedule, *FaultMetrics) {
		r := &NoisyEFTRouter{RelErr: 0.1, Rng: rand.New(rand.NewSource(3))}
		s, m, err := RunFaulty(inst, r, plan, policy)
		if err != nil {
			t.Fatal(err)
		}
		return s, m
	}
	s1, m1 := run()
	s2, m2 := run()
	if !reflect.DeepEqual(m1.Flows, m2.Flows) || !reflect.DeepEqual(m1.Attempts, m2.Attempts) ||
		!reflect.DeepEqual(m1.Dropped, m2.Dropped) {
		t.Fatal("faulty runs with identical inputs diverged")
	}
	for i := range s1.Machine {
		if s1.Machine[i] != s2.Machine[i] {
			t.Fatal("faulty schedules with identical inputs diverged")
		}
	}
}

// TestFaultyScheduleConsistency: under heavy random faults, every
// non-dropped request occupies a live-at-dispatch server without
// overlapping another request on the same server.
func TestFaultyScheduleConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		m := 3 + rng.Intn(5)
		inst := randomInstance(m, 150, rng)
		horizon := inst.Tasks[inst.N()-1].Release
		plan := faults.Generate(m, horizon, horizon/8, horizon/20, rng)
		for _, kind := range allRouterKinds {
			r, _ := routerPair(kind, rng.Int63())
			s, fm, err := RunFaulty(inst, r, plan, RetryPolicy{MaxAttempts: 5})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, kind, err)
			}
			type span struct{ start, end core.Time }
			perServer := make([][]span, m)
			for i, task := range inst.Tasks {
				if fm.Dropped[i] {
					if s.Machine[i] != -1 {
						t.Fatalf("trial %d %s: dropped task %d still assigned", trial, kind, i)
					}
					continue
				}
				j := s.Machine[i]
				if j < 0 || j >= m || !task.Eligible(j) {
					t.Fatalf("trial %d %s: task %d on ineligible server %d", trial, kind, i, j)
				}
				if s.Start[i] < task.Release {
					t.Fatalf("trial %d %s: task %d starts before release", trial, kind, i)
				}
				if plan.DownAt(j, s.Start[i]) {
					t.Fatalf("trial %d %s: task %d starts on a down server", trial, kind, i)
				}
				perServer[j] = append(perServer[j], span{s.Start[i], s.Start[i] + task.Proc})
			}
			for j, spans := range perServer {
				sort.Slice(spans, func(a, b int) bool { return spans[a].start < spans[b].start })
				for x := 1; x < len(spans); x++ {
					if spans[x-1].end > spans[x].start+1e-9 {
						t.Fatalf("trial %d %s: overlapping service on server %d", trial, kind, j)
					}
				}
			}
		}
	}
}
