package sim

import (
	"fmt"
	"math"

	"flowsched/internal/core"
	"flowsched/internal/faults"
	"flowsched/internal/obs"
	"flowsched/internal/stats"
)

// RetryPolicy governs what happens to a request whose server fails while
// the request is queued or running there. The zero value retries forever,
// immediately, with no timeout — every request eventually completes as
// long as plans are finite.
type RetryPolicy struct {
	// MaxAttempts caps the total number of dispatch attempts per request;
	// a request aborted on its MaxAttempts-th attempt is dropped. 0 means
	// unlimited.
	MaxAttempts int
	// Backoff delays the re-dispatch of an aborted request: attempt a+1 is
	// scheduled Backoff·BackoffFactor^(a-1) after the abort. 0 fails over
	// immediately.
	Backoff core.Time
	// BackoffFactor is the multiplier applied per additional attempt
	// (exponential backoff). 0 and 1 mean constant backoff; values in
	// (0, 1) are rejected by Validate (they would shrink the delay per
	// attempt — retries accelerating into a down server).
	BackoffFactor float64
	// Timeout drops a request when its age (time since release) would
	// exceed this at the next re-dispatch instant. 0 means no timeout.
	Timeout core.Time
}

// maxBackoff caps the exponential backoff: beyond ~2^60 time units the
// delay is effectively "never", and letting the multiplication run free
// would overflow core.Time to +Inf for large attempt counts, producing a
// NaN-infested event queue instead of a late retry.
const maxBackoff = core.Time(1 << 60)

// Validate rejects retry policies the engine would execute surprisingly.
// The headline case is a BackoffFactor in (0, 1): delay used to shrink it
// silently per attempt — retries accelerating as a server stays down, the
// opposite of backoff — so the engine now refuses it up front (flowsim
// surfaces this as a usage error, exit 2). Zero values keep their
// documented meanings (unlimited attempts, no backoff, constant factor, no
// timeout); negative and non-finite fields are rejected.
func (p RetryPolicy) Validate() error {
	if p.MaxAttempts < 0 {
		return fmt.Errorf("sim: retry policy: MaxAttempts %d must be non-negative (0 = unlimited)", p.MaxAttempts)
	}
	if math.IsNaN(float64(p.Backoff)) || math.IsInf(float64(p.Backoff), 0) || p.Backoff < 0 {
		return fmt.Errorf("sim: retry policy: Backoff %v must be finite and non-negative", p.Backoff)
	}
	if math.IsNaN(p.BackoffFactor) || math.IsInf(p.BackoffFactor, 0) || p.BackoffFactor < 0 {
		return fmt.Errorf("sim: retry policy: BackoffFactor %v must be finite and non-negative", p.BackoffFactor)
	}
	if p.BackoffFactor > 0 && p.BackoffFactor < 1 {
		return fmt.Errorf("sim: retry policy: BackoffFactor %v in (0, 1) would shrink the delay per attempt — retries accelerating into a down server; use 1 (or 0) for constant backoff", p.BackoffFactor)
	}
	if math.IsNaN(float64(p.Timeout)) || math.IsInf(float64(p.Timeout), 0) || p.Timeout < 0 {
		return fmt.Errorf("sim: retry policy: Timeout %v must be finite and non-negative", p.Timeout)
	}
	return nil
}

// delay returns the backoff before attempt attempts+1, given attempts
// completed so far (≥ 1). The result is clamped to maxBackoff.
func (p RetryPolicy) delay(attempts int) core.Time {
	if p.Backoff <= 0 {
		return 0
	}
	f := p.BackoffFactor
	if f <= 0 {
		f = 1
	}
	d := p.Backoff
	for a := 1; a < attempts; a++ {
		d *= f
		if d >= maxBackoff {
			return maxBackoff
		}
	}
	if d >= maxBackoff {
		return maxBackoff
	}
	return d
}

// FaultMetrics extends Metrics with the robustness observables of a faulty
// run. Flows/Stretches of a dropped request measure the time from release
// until the drop decision (the latency of the failure response), not a
// completion.
type FaultMetrics struct {
	Metrics
	Attempts []int       // per-request dispatch attempts (≥ 1 unless parked forever)
	Dropped  []bool      // per-request: gave up (attempt cap or timeout)
	Parked   []bool      // per-request: waited at least once with its whole set down
	Downtime []core.Time // per-server down time within [0, Horizon)
	Horizon  core.Time   // observation horizon (makespan, or plan end when longer)

	plan     *faults.Plan
	releases []core.Time
}

// DroppedCount returns the number of requests that were dropped.
func (m *FaultMetrics) DroppedCount() int { return countTrue(m.Dropped) }

// ParkedCount returns the number of requests that were parked at least
// once (their entire processing set was down on arrival or failover).
func (m *FaultMetrics) ParkedCount() int { return countTrue(m.Parked) }

// DropRate returns the fraction of requests dropped.
func (m *FaultMetrics) DropRate() float64 {
	if len(m.Dropped) == 0 {
		return 0
	}
	return float64(m.DroppedCount()) / float64(len(m.Dropped))
}

// TotalRetries returns Σ_i max(Attempts_i − 1, 0): the number of extra
// dispatches caused by failures.
func (m *FaultMetrics) TotalRetries() int {
	total := 0
	for _, a := range m.Attempts {
		if a > 1 {
			total += a - 1
		}
	}
	return total
}

// MeanAttempts returns the average number of dispatch attempts per request.
func (m *FaultMetrics) MeanAttempts() float64 {
	if len(m.Attempts) == 0 {
		return 0
	}
	total := 0
	for _, a := range m.Attempts {
		total += a
	}
	return float64(total) / float64(len(m.Attempts))
}

// Availability returns the fraction of server·time the cluster was up over
// the run's horizon.
func (m *FaultMetrics) Availability() float64 { return m.plan.Availability(m.Horizon) }

// RecoverySpikeMaxFlow returns the maximum flow among requests released
// while a server was down or within window after a recovery — the
// transient the paper's steady-state Fmax protocol cannot see. It returns
// 0 when no request falls in a spike window. Dropped requests are
// excluded (their pseudo-flow is reported through DropRate instead).
func (m *FaultMetrics) RecoverySpikeMaxFlow(window core.Time) core.Time {
	var mx core.Time
	outages := m.plan.Normalize().Outages
	inSpike := func(r core.Time) bool {
		for _, o := range outages {
			if r >= o.From && r < o.Until+window {
				return true
			}
		}
		return false
	}
	for i, r := range m.releases {
		if m.Dropped[i] || !inSpike(r) {
			continue
		}
		if m.Flows[i] > mx {
			mx = m.Flows[i]
		}
	}
	return mx
}

// RecoverySpike returns RecoverySpikeMaxFlow with the plan's empirical
// mean repair time as the window.
func (m *FaultMetrics) RecoverySpike() core.Time {
	return m.RecoverySpikeMaxFlow(m.plan.MeanRepairTime())
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// faultEvent is a non-arrival event of the faulty simulation.
type faultEvent struct {
	kind   int // evDown | evUp | evRetry | evScale | evJoin | evHedge | evTied | evBreaker
	server int // evDown/evUp: the server; evJoin: the joining machine slot; evBreaker: the breaker's server
	task   int // evRetry/evHedge/evTied: the task; evScale: the signed membership delta
}

const (
	evDown = iota
	evUp
	evRetry
	evScale   // scripted elastic scale event (task = signed delta)
	evJoin    // a warming machine finishes setup and goes active (server = slot)
	evHedge   // the hedge trigger fires for a task (task = id)
	evTied    // a tied pair reaches service start: revoke the loser (task = id)
	evBreaker // a breaker's state may have changed: tick the cooldown, wake parked work (server = slot)
)

// compEvent is a queued completion; gen invalidates completions of aborted
// attempts.
type compEvent struct {
	server, task, gen int
}

// RunFaulty simulates the instance under the router while replaying the
// fault plan: servers go down and up at the plan's instants, a failing
// server loses all queued and running requests (non-preemptive restart —
// partial work is wasted), and lost requests fail over to a live replica
// under the retry policy. Requests whose whole processing set is down are
// parked until the first replica recovers. Gray failures are replayed too:
// inside a plan Slowdown segment the server processes at 1/Factor speed, so
// completion times come from faults.FinishTime instead of start + proc. A
// nil or empty plan — including one whose slowdowns all have factor 1 —
// reproduces Run exactly: identical schedules and metrics, bit for bit
// (asserted by TestRunFaultyEmptyPlanEquivalence and
// TestRunFaultyNoopSlowdownsByteIdentical).
//
// Routers see the live cluster only: an arriving (or failing-over) request
// is presented with its processing set shrunk to the live replicas, so
// every Router implementation works unchanged; picking a dead server is
// reported as an error. Dropped requests are left unassigned in the
// returned schedule (Machine −1), so core.Schedule.Validate only applies
// to runs without drops.
func RunFaulty(inst *core.Instance, router Router, plan *faults.Plan, policy RetryPolicy) (*core.Schedule, *FaultMetrics, error) {
	return RunFaultyProbed(inst, router, plan, policy, nil)
}

// RunFaulty is the package-level RunFaulty running in the reusable arena:
// the returned schedule and metrics point into the arena and are valid until
// its next run.
func (a *Arena) RunFaulty(inst *core.Instance, router Router, plan *faults.Plan, policy RetryPolicy) (*core.Schedule, *FaultMetrics, error) {
	return a.RunFaultyProbed(inst, router, plan, policy, nil)
}

// RunFaultyProbed is the arena variant of the package-level RunFaultyProbed.
func (a *Arena) RunFaultyProbed(inst *core.Instance, router Router, plan *faults.Plan, policy RetryPolicy, probe obs.Probe) (*core.Schedule, *FaultMetrics, error) {
	s, om, err := a.RunGuarded(inst, router, plan, policy, nil, probe)
	if err != nil {
		return nil, nil, err
	}
	return s, &om.FaultMetrics, nil
}

// RunFaultyProbed is RunFaulty with an observability probe attached. Unlike
// the fault-free simulator, completions are reported only when they become
// final (crash-invalidated attempts never complete), in time order; crashes
// surface as OnFailover followed by OnRetry/OnDrop for each lost request.
// A nil probe is exactly RunFaulty — every hook sits behind a nil guard, so
// the unobserved path allocates nothing extra (TestProbeNilRunFaultyAllocs).
//
// Both RunFaulty wrappers delegate to RunGuarded (guardsim.go) with a nil
// overload config: the engine lives there and the disabled-config path is
// byte-identical by construction (and property-tested).
func RunFaultyProbed(inst *core.Instance, router Router, plan *faults.Plan, policy RetryPolicy, probe obs.Probe) (*core.Schedule, *FaultMetrics, error) {
	s, om, err := RunGuarded(inst, router, plan, policy, nil, probe)
	if err != nil {
		return nil, nil, err
	}
	return s, &om.FaultMetrics, nil
}

// SpikeQuantile returns the q-quantile of flows among non-dropped requests
// released inside outage/recovery windows (window after each recovery).
func (m *FaultMetrics) SpikeQuantile(window core.Time, q float64) core.Time {
	outages := m.plan.Normalize().Outages
	var spike []core.Time
	for i, r := range m.releases {
		if m.Dropped[i] {
			continue
		}
		for _, o := range outages {
			if r >= o.From && r < o.Until+window {
				spike = append(spike, m.Flows[i])
				break
			}
		}
	}
	return stats.Quantile(spike, q)
}
