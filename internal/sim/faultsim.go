package sim

import (
	"fmt"
	"math"

	"flowsched/internal/core"
	"flowsched/internal/eventq"
	"flowsched/internal/faults"
	"flowsched/internal/obs"
	"flowsched/internal/stats"
)

// RetryPolicy governs what happens to a request whose server fails while
// the request is queued or running there. The zero value retries forever,
// immediately, with no timeout — every request eventually completes as
// long as plans are finite.
type RetryPolicy struct {
	// MaxAttempts caps the total number of dispatch attempts per request;
	// a request aborted on its MaxAttempts-th attempt is dropped. 0 means
	// unlimited.
	MaxAttempts int
	// Backoff delays the re-dispatch of an aborted request: attempt a+1 is
	// scheduled Backoff·BackoffFactor^(a-1) after the abort. 0 fails over
	// immediately.
	Backoff core.Time
	// BackoffFactor is the multiplier applied per additional attempt
	// (exponential backoff). Values ≤ 0 and 1 mean constant backoff.
	BackoffFactor float64
	// Timeout drops a request when its age (time since release) would
	// exceed this at the next re-dispatch instant. 0 means no timeout.
	Timeout core.Time
}

// maxBackoff caps the exponential backoff: beyond ~2^60 time units the
// delay is effectively "never", and letting the multiplication run free
// would overflow core.Time to +Inf for large attempt counts, producing a
// NaN-infested event queue instead of a late retry.
const maxBackoff = core.Time(1 << 60)

// delay returns the backoff before attempt attempts+1, given attempts
// completed so far (≥ 1). The result is clamped to maxBackoff.
func (p RetryPolicy) delay(attempts int) core.Time {
	if p.Backoff <= 0 {
		return 0
	}
	f := p.BackoffFactor
	if f <= 0 {
		f = 1
	}
	d := p.Backoff
	for a := 1; a < attempts; a++ {
		d *= f
		if d >= maxBackoff {
			return maxBackoff
		}
	}
	if d >= maxBackoff {
		return maxBackoff
	}
	return d
}

// FaultMetrics extends Metrics with the robustness observables of a faulty
// run. Flows/Stretches of a dropped request measure the time from release
// until the drop decision (the latency of the failure response), not a
// completion.
type FaultMetrics struct {
	Metrics
	Attempts []int       // per-request dispatch attempts (≥ 1 unless parked forever)
	Dropped  []bool      // per-request: gave up (attempt cap or timeout)
	Parked   []bool      // per-request: waited at least once with its whole set down
	Downtime []core.Time // per-server down time within [0, Horizon)
	Horizon  core.Time   // observation horizon (makespan, or plan end when longer)

	plan     *faults.Plan
	releases []core.Time
}

// DroppedCount returns the number of requests that were dropped.
func (m *FaultMetrics) DroppedCount() int { return countTrue(m.Dropped) }

// ParkedCount returns the number of requests that were parked at least
// once (their entire processing set was down on arrival or failover).
func (m *FaultMetrics) ParkedCount() int { return countTrue(m.Parked) }

// DropRate returns the fraction of requests dropped.
func (m *FaultMetrics) DropRate() float64 {
	if len(m.Dropped) == 0 {
		return 0
	}
	return float64(m.DroppedCount()) / float64(len(m.Dropped))
}

// TotalRetries returns Σ_i max(Attempts_i − 1, 0): the number of extra
// dispatches caused by failures.
func (m *FaultMetrics) TotalRetries() int {
	total := 0
	for _, a := range m.Attempts {
		if a > 1 {
			total += a - 1
		}
	}
	return total
}

// MeanAttempts returns the average number of dispatch attempts per request.
func (m *FaultMetrics) MeanAttempts() float64 {
	if len(m.Attempts) == 0 {
		return 0
	}
	total := 0
	for _, a := range m.Attempts {
		total += a
	}
	return float64(total) / float64(len(m.Attempts))
}

// Availability returns the fraction of server·time the cluster was up over
// the run's horizon.
func (m *FaultMetrics) Availability() float64 { return m.plan.Availability(m.Horizon) }

// RecoverySpikeMaxFlow returns the maximum flow among requests released
// while a server was down or within window after a recovery — the
// transient the paper's steady-state Fmax protocol cannot see. It returns
// 0 when no request falls in a spike window. Dropped requests are
// excluded (their pseudo-flow is reported through DropRate instead).
func (m *FaultMetrics) RecoverySpikeMaxFlow(window core.Time) core.Time {
	var mx core.Time
	outages := m.plan.Normalize().Outages
	inSpike := func(r core.Time) bool {
		for _, o := range outages {
			if r >= o.From && r < o.Until+window {
				return true
			}
		}
		return false
	}
	for i, r := range m.releases {
		if m.Dropped[i] || !inSpike(r) {
			continue
		}
		if m.Flows[i] > mx {
			mx = m.Flows[i]
		}
	}
	return mx
}

// RecoverySpike returns RecoverySpikeMaxFlow with the plan's empirical
// mean repair time as the window.
func (m *FaultMetrics) RecoverySpike() core.Time {
	return m.RecoverySpikeMaxFlow(m.plan.MeanRepairTime())
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// faultEvent is a non-arrival event of the faulty simulation.
type faultEvent struct {
	kind   int // evDown | evUp | evRetry
	server int // evDown/evUp
	task   int // evRetry
}

const (
	evDown = iota
	evUp
	evRetry
)

// compEvent is a queued completion; gen invalidates completions of aborted
// attempts.
type compEvent struct {
	server, task, gen int
}

// RunFaulty simulates the instance under the router while replaying the
// fault plan: servers go down and up at the plan's instants, a failing
// server loses all queued and running requests (non-preemptive restart —
// partial work is wasted), and lost requests fail over to a live replica
// under the retry policy. Requests whose whole processing set is down are
// parked until the first replica recovers. Gray failures are replayed too:
// inside a plan Slowdown segment the server processes at 1/Factor speed, so
// completion times come from faults.FinishTime instead of start + proc. A
// nil or empty plan — including one whose slowdowns all have factor 1 —
// reproduces Run exactly: identical schedules and metrics, bit for bit
// (asserted by TestRunFaultyEmptyPlanEquivalence and
// TestRunFaultyNoopSlowdownsByteIdentical).
//
// Routers see the live cluster only: an arriving (or failing-over) request
// is presented with its processing set shrunk to the live replicas, so
// every Router implementation works unchanged; picking a dead server is
// reported as an error. Dropped requests are left unassigned in the
// returned schedule (Machine −1), so core.Schedule.Validate only applies
// to runs without drops.
func RunFaulty(inst *core.Instance, router Router, plan *faults.Plan, policy RetryPolicy) (*core.Schedule, *FaultMetrics, error) {
	return RunFaultyProbed(inst, router, plan, policy, nil)
}

// RunFaultyProbed is RunFaulty with an observability probe attached. Unlike
// the fault-free simulator, completions are reported only when they become
// final (crash-invalidated attempts never complete), in time order; crashes
// surface as OnFailover followed by OnRetry/OnDrop for each lost request.
// A nil probe is exactly RunFaulty — every hook sits behind a nil guard, so
// the unobserved path allocates nothing extra (TestProbeNilRunFaultyAllocs).
func RunFaultyProbed(inst *core.Instance, router Router, plan *faults.Plan, policy RetryPolicy, probe obs.Probe) (*core.Schedule, *FaultMetrics, error) {
	if err := inst.Validate(); err != nil {
		return nil, nil, fmt.Errorf("sim: %w", err)
	}
	if plan == nil {
		plan = faults.Empty(inst.M)
	}
	if err := plan.Validate(); err != nil {
		return nil, nil, fmt.Errorf("sim: %w", err)
	}
	if plan.M != inst.M {
		return nil, nil, fmt.Errorf("sim: fault plan for %d servers, instance has %d", plan.M, inst.M)
	}
	plan = plan.Normalize()
	if r, ok := router.(Resettable); ok {
		r.Reset()
	}

	m := inst.M
	n := inst.N()
	st := &State{
		M:          m,
		Completion: make([]core.Time, m),
		QueueLen:   make([]int, m),
	}
	sched := core.NewSchedule(inst)
	metrics := &FaultMetrics{
		Metrics: Metrics{
			Flows:     make([]core.Time, n),
			Stretches: make([]core.Time, n),
			Busy:      make([]core.Time, m),
		},
		Attempts: make([]int, n),
		Dropped:  make([]bool, n),
		Parked:   make([]bool, n),
		plan:     plan,
		releases: make([]core.Time, n),
	}
	for i, t := range inst.Tasks {
		metrics.releases[i] = t.Release
	}

	live := make([]bool, m)
	for j := range live {
		live[j] = true
	}
	// slow holds each server's effective gray-failure segments; nil when the
	// plan has none, so the healthy dispatch arithmetic below is untouched
	// (and all-factor-1 segments were dropped by Normalize above).
	var slow [][]faults.Slowdown
	if len(plan.Slowdowns) > 0 {
		slow = plan.ServerSlowdowns()
	}
	downCount := 0
	pending := make([][]int, m)      // per-server FIFO of unfinished request IDs
	gen := make([]int, n)            // attempt generation, invalidates stale completions
	curStart := make([]core.Time, n) // start of the current attempt
	curEnd := make([]core.Time, n)   // end of the current attempt
	busyAdd := make([]core.Time, n)  // busy time credited for the current attempt
	var parked []int                 // requests waiting for any replica to recover
	var completions eventq.Queue[compEvent]
	var events eventq.Queue[faultEvent]
	completions.Reserve(reserveFor(n))
	events.Reserve(2 * len(plan.Outages))
	for _, o := range plan.Outages {
		events.Push(o.From, faultEvent{kind: evDown, server: o.Server})
		events.Push(o.Until, faultEvent{kind: evUp, server: o.Server})
	}

	drain := func(upTo core.Time) {
		for completions.Len() > 0 {
			when, c := completions.Peek()
			if when > upTo {
				return
			}
			completions.Pop()
			if c.gen != gen[c.task] {
				continue // stale: that attempt was aborted
			}
			if probe != nil {
				t := inst.Tasks[c.task]
				probe.OnComplete(c.task, c.server, t.Release, t.Proc, when)
			}
			st.QueueLen[c.server]--
			q := pending[c.server]
			if len(q) > 0 && q[0] == c.task {
				pending[c.server] = q[1:]
			} else { // defensive; FIFO service should make this unreachable
				for x, id := range q {
					if id == c.task {
						pending[c.server] = append(q[:x:x], q[x+1:]...)
						break
					}
				}
			}
		}
	}

	drop := func(id int, now core.Time) {
		metrics.Dropped[id] = true
		metrics.Flows[id] = now - inst.Tasks[id].Release
		metrics.Stretches[id] = stretchOf(metrics.Flows[id], inst.Tasks[id].Proc)
		sched.Assign(id, -1, math.NaN())
		if probe != nil {
			probe.OnDrop(id, inst.Tasks[id].Release, now)
		}
	}

	// liveBuf is reused across dispatches: the live view handed to the
	// router is only read within the Pick call, never retained.
	liveBuf := make(core.ProcSet, 0, m)
	liveSubset := func(set core.ProcSet) core.ProcSet {
		out := liveBuf[:0]
		if set == nil {
			for j := 0; j < m; j++ {
				if live[j] {
					out = append(out, j)
				}
			}
		} else {
			for _, j := range set {
				if live[j] {
					out = append(out, j)
				}
			}
		}
		return out
	}

	// dispatch routes request id at instant now (its release, a failover
	// instant, or a recovery instant). The arithmetic mirrors Run exactly
	// so an empty plan reproduces it bit for bit.
	dispatch := func(id int, now core.Time) error {
		task := inst.Tasks[id]
		view := task
		if downCount > 0 {
			eff := liveSubset(task.Set)
			if len(eff) == 0 {
				metrics.Parked[id] = true
				parked = append(parked, id)
				return nil
			}
			view.Set = eff
		}
		view.Release = now // failover re-dispatches cannot start before now
		metrics.Attempts[id]++
		j := router.Pick(st, view)
		if j < 0 || j >= m || !view.Eligible(j) {
			return fmt.Errorf("sim: router %s picked invalid server M%d for task %d (live set %v)",
				router.Name(), j+1, id, view.Set)
		}
		if !live[j] {
			return fmt.Errorf("sim: router %s picked dead server M%d for task %d at t=%v",
				router.Name(), j+1, id, now)
		}
		start := st.Completion[j]
		if now > start {
			start = now
		}
		end := start + task.Proc
		busy := task.Proc
		if slow != nil && len(slow[j]) > 0 {
			// Gray failure: work on j advances at rate 1/Factor inside its
			// slowdown segments, so the attempt occupies [start, end) with
			// end from the piecewise integration, and all of it is busy time.
			end = faults.FinishTime(slow[j], start, task.Proc)
			busy = end - start
		}
		st.Completion[j] = end
		st.QueueLen[j]++
		completions.Push(end, compEvent{server: j, task: id, gen: gen[id]})
		pending[j] = append(pending[j], id)
		curStart[id], curEnd[id] = start, end
		busyAdd[id] = busy
		sched.Assign(id, j, start)
		metrics.Flows[id] = end - task.Release
		metrics.Stretches[id] = stretchOf(end-task.Release, task.Proc)
		metrics.Busy[j] += busy
		if probe != nil {
			probe.OnDispatch(id, j, now, start, end)
		}
		return nil
	}

	// requeue decides the fate of request id aborted at instant now.
	requeue := func(id int, now core.Time) {
		if policy.MaxAttempts > 0 && metrics.Attempts[id] >= policy.MaxAttempts {
			drop(id, now)
			return
		}
		next := now + policy.delay(metrics.Attempts[id])
		if policy.Timeout > 0 && next-inst.Tasks[id].Release > policy.Timeout {
			drop(id, now)
			return
		}
		events.Push(next, faultEvent{kind: evRetry, task: id})
		if probe != nil {
			probe.OnRetry(id, metrics.Attempts[id], now)
		}
	}

	fail := func(j int, now core.Time) {
		live[j] = false
		downCount++
		lost := pending[j]
		pending[j] = nil
		st.QueueLen[j] -= len(lost)
		st.Completion[j] = now
		if probe != nil {
			probe.OnFailover(j, now, len(lost))
		}
		for _, id := range lost {
			gen[id]++ // invalidate the queued completion
			executed := core.Time(0)
			if curStart[id] < now {
				executed = now - curStart[id] // the running request's wasted partial work
			}
			metrics.Busy[j] -= busyAdd[id] - executed
			requeue(id, now)
		}
	}

	restore := func(j int, now core.Time) error {
		live[j] = true
		downCount--
		still := parked[:0]
		var wake []int
		for _, id := range parked {
			if inst.Tasks[id].Eligible(j) {
				wake = append(wake, id)
			} else {
				still = append(still, id)
			}
		}
		parked = still
		for _, id := range wake {
			if policy.Timeout > 0 && now-inst.Tasks[id].Release > policy.Timeout {
				drop(id, now)
				continue
			}
			if err := dispatch(id, now); err != nil {
				return err
			}
		}
		return nil
	}

	next := 0 // next arrival index
	for next < n || events.Len() > 0 {
		if events.Len() > 0 {
			when, _ := events.Peek()
			if next >= n || when <= inst.Tasks[next].Release {
				when, ev := events.Pop()
				st.Now = when
				drain(when)
				switch ev.kind {
				case evDown:
					fail(ev.server, when)
				case evUp:
					if err := restore(ev.server, when); err != nil {
						return nil, nil, err
					}
				case evRetry:
					if err := dispatch(ev.task, when); err != nil {
						return nil, nil, err
					}
				}
				continue
			}
		}
		task := inst.Tasks[next]
		st.Now = task.Release
		drain(st.Now)
		if probe != nil {
			probe.OnArrival(next, task.Release)
		}
		if err := dispatch(next, task.Release); err != nil {
			return nil, nil, err
		}
		next++
	}

	for id := 0; id < n; id++ {
		if metrics.Dropped[id] {
			continue
		}
		if curEnd[id] > metrics.Makespan {
			metrics.Makespan = curEnd[id]
		}
	}
	drain(metrics.Makespan)
	metrics.Horizon = metrics.Makespan
	if end := plan.End(); end > metrics.Horizon {
		metrics.Horizon = end
	}
	metrics.Downtime = plan.Downtime(metrics.Horizon)
	if probe != nil {
		probe.OnDone(metrics.Makespan)
	}
	return sched, metrics, nil
}

// SpikeQuantile returns the q-quantile of flows among non-dropped requests
// released inside outage/recovery windows (window after each recovery).
func (m *FaultMetrics) SpikeQuantile(window core.Time, q float64) core.Time {
	outages := m.plan.Normalize().Outages
	var spike []core.Time
	for i, r := range m.releases {
		if m.Dropped[i] {
			continue
		}
		for _, o := range outages {
			if r >= o.From && r < o.Until+window {
				spike = append(spike, m.Flows[i])
				break
			}
		}
	}
	return stats.Quantile(spike, q)
}
