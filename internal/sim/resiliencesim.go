package sim

import (
	"math"

	"flowsched/internal/core"
	"flowsched/internal/elastic"
	"flowsched/internal/eventq"
	"flowsched/internal/faults"
	"flowsched/internal/hedge"
	"flowsched/internal/obs"
	"flowsched/internal/overload"
	"flowsched/internal/resilience"
)

// rsRun is the engine-side runtime of a resilience config: the breaker
// bank, the retry-budget bucket, the jitter state and the per-task probe /
// disposition vectors. It exists only when a config is present, so the
// disabled path touches none of it and stays byte-identical to RunHedged.
type rsRun struct {
	cfg *resilience.Config
	ro  obs.ResilienceObserver

	budget   resilience.Budget
	budgetOn bool
	prev     []core.Time // per-task previous jittered delay (decorrelated mode)
	bdrop    []bool      // per-task budget-drop disposition (metrics.BudgetDropped)

	brk     *resilience.Breakers
	probe   []bool // per-task: the in-flight attempt is a half-open probe
	curSpan []int  // per-server: 1 + index into spans of the open episode (0 = none)
	spans   []resilience.Span
	disp    core.Times   // dispatch instants for the breaker-legality audit
	brkBuf  core.ProcSet // dispatch-time breaker-filter scratch
}

// opened books a breaker open episode at now: it ends the previous span
// (a probe-failure re-open), starts a new one, arms the cooldown-expiry
// event and notifies the observer.
func (rs *rsRun) opened(j int, now core.Time, metrics *ElasticMetrics, events *eventq.Queue[faultEvent]) {
	rs.endSpan(j, now, false)
	metrics.BreakerOpens++
	rs.spans = append(rs.spans, resilience.Span{
		Server:     j,
		OpenedAt:   now,
		HalfOpenAt: core.Time(math.NaN()),
		EndedAt:    core.Time(math.NaN()),
	})
	rs.curSpan[j] = len(rs.spans)
	events.Push(rs.brk.OpenUntil(j), faultEvent{kind: evBreaker, server: j})
	if rs.ro != nil {
		rs.ro.OnBreakerOpen(j, now)
	}
}

// halfOpened stamps the open episode's half-open instant.
func (rs *rsRun) halfOpened(j int, now core.Time) {
	if si := rs.curSpan[j]; si > 0 {
		rs.spans[si-1].HalfOpenAt = now
	}
}

// closed books a probe-success close at now and queues a same-instant
// breaker event so parked work wakes onto the readmitted server.
func (rs *rsRun) closed(j int, now core.Time, metrics *ElasticMetrics, events *eventq.Queue[faultEvent]) {
	metrics.BreakerCloses++
	rs.endSpan(j, now, true)
	events.Push(now, faultEvent{kind: evBreaker, server: j})
	if rs.ro != nil {
		rs.ro.OnBreakerClose(j, now)
	}
}

// endSpan finishes server j's current open episode (no-op without one).
func (rs *rsRun) endSpan(j int, now core.Time, closedBy bool) {
	if si := rs.curSpan[j]; si > 0 {
		rs.spans[si-1].EndedAt = now
		rs.spans[si-1].Closed = closedBy
		rs.curSpan[j] = 0
	}
}

// failed classifies a completion outcome for the breaker: a failure when
// the configured slow factor is set and the attempt's observed service
// time reached SlowFactor × the task's nominal processing time.
func (rs *rsRun) failed(inst *core.Instance, task int, start, when core.Time) bool {
	sf := rs.brk.SlowFactor()
	if sf <= 0 {
		return false
	}
	proc := inst.Tasks[task].Proc
	if proc <= 0 {
		return false
	}
	return float64((when-start)/proc) >= sf
}

// RunResilient is the resilient superset of RunHedged: the same unified
// fault-replaying, overload-controlled, elastic, hedged simulation with the
// metastable-failure protections of internal/resilience attached. A nil
// rcfg is byte-identical to RunHedged — identical schedules and metrics,
// with nil resilience vectors and zero counters — asserted by
// TestRunResilientNilConfigEquivalence and alloc-pinned by
// TestRunResilientNilConfigAllocs.
//
// With a config:
//
//   - Jitter (rcfg.Jitter) randomizes every retry's backoff delay with a
//     pure hash of (seed, task, attempt) — full, equal or decorrelated —
//     so synchronized retry waves from a mass outage spread out instead of
//     re-saturating the recovered servers. Replayable: equal seeds retry
//     at identical instants.
//   - The retry budget (rcfg.RetryBudget) is a token bucket refilled by
//     every first-attempt dispatch and debited by every retry, so retry
//     traffic can never exceed the configured fraction of live traffic.
//     An over-budget retry drops its task with the BudgetDropped
//     disposition (never parked forever); RetriesIssued + RetriesDropped
//     == RetriesRequested holds exactly and is audited.
//   - Per-server circuit breakers (rcfg.Breaker) watch a sliding window of
//     dispatch outcomes — crashes, and completions slower than SlowFactor ×
//     nominal (how a gray-slow server that never crashes is caught). A
//     tripped breaker blocks dispatches for the cooldown, then admits a
//     capped number of half-open probes; a probe success closes it, a probe
//     failure re-opens it. Failover routing filters breaker-open servers
//     out of every candidate set (hedge copies go only to closed breakers);
//     a task whose whole effective set is open parks and wakes at the next
//     breaker transition — it never livelocks.
//
// Each call runs in a private Arena; batch callers reuse one arena's
// RunResilient method to amortize the per-run allocations away.
func RunResilient(inst *core.Instance, router Router, plan *faults.Plan, policy RetryPolicy, cfg *overload.Config, ecfg *elastic.Config, hcfg *hedge.Config, rcfg *resilience.Config, probe obs.Probe) (*core.Schedule, *ElasticMetrics, error) {
	return NewArena().RunResilient(inst, router, plan, policy, cfg, ecfg, hcfg, rcfg, probe)
}

// RunHedged is the arena variant of the package-level RunHedged. It is
// RunResilient with the resilience layer disabled — the engine lives there;
// a nil resilience config is byte-identical by construction (and
// property-tested).
func (a *Arena) RunHedged(inst *core.Instance, router Router, plan *faults.Plan, policy RetryPolicy, cfg *overload.Config, ecfg *elastic.Config, hcfg *hedge.Config, probe obs.Probe) (*core.Schedule, *ElasticMetrics, error) {
	return a.RunResilient(inst, router, plan, policy, cfg, ecfg, hcfg, nil, probe)
}
