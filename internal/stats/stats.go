// Package stats provides the small statistical toolbox used by the
// experiments: means, medians, quantiles, generalized harmonic numbers and
// run summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median of xs using the midpoint convention for even
// lengths (0 for an empty slice). The input is not modified.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the R default). The input
// is not modified. It returns 0 for an empty slice and clamps q to [0,1].
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted is Quantile on an already-sorted non-empty sample; callers
// needing several quantiles sort once and share the copy.
func quantileSorted(sorted []float64, q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Min returns the minimum of xs. An empty sample has no minimum; it is
// reported as 0, never ±Inf, so downstream aggregates (and json.Marshal,
// which rejects infinities) stay well-defined on empty or fully-skipped
// runs.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (0 for an empty slice, for the same reason
// as Min).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// StdDev returns the population standard deviation of xs (0 for fewer than
// two samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mu := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - mu
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Harmonic returns the m-th generalized harmonic number of order s,
// H_{m,s} = Σ_{j=1..m} 1/j^s, used by the Zipf popularity model.
func Harmonic(m int, s float64) float64 {
	var h float64
	for j := 1; j <= m; j++ {
		h += 1 / math.Pow(float64(j), s)
	}
	return h
}

// Summary aggregates a sample for experiment reporting.
type Summary struct {
	N            int
	Mean, Median float64
	Min, Max     float64
	StdDev       float64
	P90, P99     float64
}

// Summarize computes a Summary of xs. The sample is copied and sorted once;
// every order statistic (median, min, max, p90, p99) reads the shared sorted
// copy instead of re-sorting per quantile.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Summary{
		N:      n,
		Mean:   Mean(xs),
		Median: quantileSorted(sorted, 0.5),
		Min:    sorted[0],
		Max:    sorted[n-1],
		StdDev: StdDev(xs),
		P90:    quantileSorted(sorted, 0.90),
		P99:    quantileSorted(sorted, 0.99),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g median=%.4g min=%.4g max=%.4g sd=%.4g p90=%.4g p99=%.4g",
		s.N, s.Mean, s.Median, s.Min, s.Max, s.StdDev, s.P90, s.P99)
}
