package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Errorf("Mean = %v", Mean([]float64{1, 2, 3, 4}))
	}
	if Mean(nil) != 0 {
		t.Errorf("Mean(nil) should be 0")
	}
}

func TestMedian(t *testing.T) {
	if !almost(Median([]float64{3, 1, 2}), 2) {
		t.Errorf("odd median")
	}
	if !almost(Median([]float64{4, 1, 3, 2}), 2.5) {
		t.Errorf("even median")
	}
	if Median(nil) != 0 {
		t.Errorf("Median(nil) should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if !almost(Quantile(xs, 0), 10) || !almost(Quantile(xs, 1), 50) {
		t.Errorf("extremes wrong")
	}
	if !almost(Quantile(xs, 0.25), 20) {
		t.Errorf("q25 = %v", Quantile(xs, 0.25))
	}
	if !almost(Quantile(xs, 0.1), 14) { // interpolation between 10 and 20
		t.Errorf("q10 = %v", Quantile(xs, 0.1))
	}
	if !almost(Quantile([]float64{7}, 0.3), 7) {
		t.Errorf("singleton quantile")
	}
	// Clamping.
	if !almost(Quantile(xs, -1), 10) || !almost(Quantile(xs, 2), 50) {
		t.Errorf("clamp wrong")
	}
}

func TestQuantileDoesNotModifyInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input modified: %v", xs)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 2}
	if Min(xs) != -1 || Max(xs) != 3 {
		t.Errorf("Min/Max wrong")
	}
	// Regression: empty samples used to report ±Inf, which poisoned the
	// sim metrics of empty runs and made json.Marshal reject them.
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Errorf("empty Min/Max should be 0, got %v/%v", Min(nil), Max(nil))
	}
	if _, err := json.Marshal([]float64{Min(nil), Max(nil)}); err != nil {
		t.Errorf("empty Min/Max not JSON-marshalable: %v", err)
	}
}

// TestSummarizeMatchesQuantile pins the single-sort Summarize against the
// direct per-statistic computations it replaced.
func TestSummarizeMatchesQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 17, 1000} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		s := Summarize(xs)
		want := Summary{
			N:      n,
			Mean:   Mean(xs),
			Median: Quantile(xs, 0.5),
			Min:    Min(xs),
			Max:    Max(xs),
			StdDev: StdDev(xs),
			P90:    Quantile(xs, 0.90),
			P99:    Quantile(xs, 0.99),
		}
		if s != want {
			t.Errorf("n=%d: Summarize %+v != direct %+v", n, s, want)
		}
	}
	if (Summarize(nil) != Summary{}) {
		t.Errorf("empty Summarize should be the zero Summary, got %+v", Summarize(nil))
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Errorf("single sample sd should be 0")
	}
	if !almost(StdDev([]float64{2, 4}), 1) {
		t.Errorf("sd of {2,4} = %v", StdDev([]float64{2, 4}))
	}
}

func TestHarmonic(t *testing.T) {
	// H_{m,0} = m.
	if !almost(Harmonic(7, 0), 7) {
		t.Errorf("H_{7,0} = %v", Harmonic(7, 0))
	}
	// H_{3,1} = 1 + 1/2 + 1/3.
	if !almost(Harmonic(3, 1), 11.0/6) {
		t.Errorf("H_{3,1} = %v", Harmonic(3, 1))
	}
	// H_{2,2} = 1 + 1/4.
	if !almost(Harmonic(2, 2), 1.25) {
		t.Errorf("H_{2,2} = %v", Harmonic(2, 2))
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || !almost(s.Mean, 3) || !almost(s.Median, 3) || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Errorf("empty String")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		// Quantile is monotone in q and bounded by min/max.
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0001; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			if v < Min(xs)-1e-9 || v > Max(xs)+1e-9 {
				return false
			}
			prev = v
		}
		// Median matches the classic definition.
		sorted := make([]float64, n)
		copy(sorted, xs)
		sort.Float64s(sorted)
		var med float64
		if n%2 == 1 {
			med = sorted[n/2]
		} else {
			med = (sorted[n/2-1] + sorted[n/2]) / 2
		}
		return math.Abs(Median(xs)-med) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
