// Package adversary implements the lower-bound constructions of Section 6:
// adaptive adversaries that interact with an immediate-dispatch scheduler
// and force the competitive ratios of Table 2. Every adversary returns the
// full instance it generated, the algorithm's schedule, and the optimal
// strategy described in the corresponding proof (as a validated schedule
// where one is constructed explicitly).
//
//	Theorem 3  — Inclusive:        ratio ≥ ⌊log2(m) + 1⌋ (immediate dispatch)
//	Theorem 4  — FixedSizeK:       ratio ≥ ⌊log_k(m)⌋    (immediate dispatch)
//	Theorem 5  — Nested:           ratio ≥ ⌊log2(m)+2⌋/3 (any online)
//	Theorem 7  — IntervalAnyOnline: ratio ≥ 2             (any online, k=2)
//	Theorem 8/9 — EFTStream:       ratio ≥ m − k + 1      (EFT-Min / EFT-Rand)
//	Theorem 10 — EFTStreamPadded:  ratio ≥ m − k + 1      (EFT, any tie-break)
package adversary

import (
	"fmt"
	"math"

	"flowsched/internal/core"
	"flowsched/internal/sched"
)

// Result reports one adversary run.
type Result struct {
	Name        string         // adversary name, e.g. "Theorem 8"
	AlgName     string         // scheduler under attack
	M, K        int            // machines and set size (K = 0 if not applicable)
	AlgFmax     core.Time      // max flow achieved by the algorithm
	OptFmax     core.Time      // max flow of the proof's optimal strategy
	Ratio       float64        // AlgFmax / OptFmax
	TheoryRatio float64        // the proven (asymptotic) lower bound
	Inst        *core.Instance // the generated instance
	AlgSched    *core.Schedule // the algorithm's schedule
	OptSched    *core.Schedule // the proof's OPT schedule; nil if analytic only
	Notes       string
}

func (r *Result) String() string {
	return fmt.Sprintf("%s vs %s (m=%d,k=%d): alg=%.4g opt=%.4g ratio=%.4g (theory ≥ %.4g)",
		r.Name, r.AlgName, r.M, r.K, r.AlgFmax, r.OptFmax, r.Ratio, r.TheoryRatio)
}

// runner drives an immediate-dispatch scheduler task by task, recording
// every decision, so adaptive adversaries can observe the schedule state
// while it is being built.
type runner struct {
	m          int
	alg        sched.Online
	tasks      []core.Task
	machines   []int
	starts     []core.Time
	completion []core.Time // per-machine completion time, mirrored from decisions
	lastRel    core.Time
}

func newRunner(alg sched.Online, m int) *runner {
	alg.Reset(m)
	return &runner{m: m, alg: alg, completion: make([]core.Time, m)}
}

// submit releases one task and returns the algorithm's decision. Releases
// must be non-decreasing across submissions.
func (r *runner) submit(release, proc core.Time, set core.ProcSet) (int, core.Time) {
	if release < r.lastRel {
		panic(fmt.Sprintf("adversary: releases must be non-decreasing (%v after %v)", release, r.lastRel))
	}
	r.lastRel = release
	task := core.Task{ID: len(r.tasks), Release: release, Proc: proc, Set: set, Key: -1}
	d := r.alg.Dispatch(task)
	r.tasks = append(r.tasks, task)
	r.machines = append(r.machines, d.Machine)
	r.starts = append(r.starts, d.Start)
	if c := d.Start + proc; c > r.completion[d.Machine] {
		r.completion[d.Machine] = c
	}
	return d.Machine, d.Start
}

// n returns the number of submitted tasks.
func (r *runner) n() int { return len(r.tasks) }

// waiting returns w_t(j) = max(0, C_j - t): the algorithm's schedule
// profile at time t.
func (r *runner) waiting(t core.Time) []core.Time {
	out := make([]core.Time, r.m)
	for j, c := range r.completion {
		if c > t {
			out[j] = c - t
		}
	}
	return out
}

// uncompleted returns, per machine, the number of submitted tasks assigned
// to it that are not completed at time t.
func (r *runner) uncompleted(t core.Time) []int {
	out := make([]int, r.m)
	for i := range r.tasks {
		if r.starts[i]+r.tasks[i].Proc > t {
			out[r.machines[i]]++
		}
	}
	return out
}

// finish builds the instance and the algorithm's schedule from the recorded
// decisions. Since releases are non-decreasing and NewInstance sorts stably,
// task IDs coincide with submission order.
func (r *runner) finish() (*core.Instance, *core.Schedule) {
	inst := core.NewInstance(r.m, r.tasks)
	s := core.NewSchedule(inst)
	for i := range r.tasks {
		s.Assign(i, r.machines[i], r.starts[i])
	}
	return inst, s
}

// floorLog returns ⌊log_base(x)⌋ for integers x ≥ 1, base ≥ 2.
func floorLog(base, x int) int {
	l := 0
	for p := base; p <= x; p *= base {
		l++
	}
	return l
}

// powInt returns base^e for small non-negative e.
func powInt(base, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= base
	}
	return out
}

// StableProfile returns the paper's stable profile w_τ for the Theorem 8
// adversary: w_τ(j) = min(m − j, m − k) with 1-based j, returned 0-based.
func StableProfile(m, k int) []core.Time {
	out := make([]core.Time, m)
	for j0 := 0; j0 < m; j0++ {
		out[j0] = core.Time(min(m-(j0+1), m-k))
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxTime(xs []core.Time) core.Time {
	mx := math.Inf(-1)
	for _, x := range xs {
		if x > mx {
			mx = x
		}
	}
	return mx
}
