package adversary

import (
	"math"
	"math/rand"
	"testing"

	"flowsched/internal/core"
	"flowsched/internal/psets"
	"flowsched/internal/sched"
)

func TestStreamRoundShape(t *testing.T) {
	// m=6, k=3 (Figure 3): the m−k=3 typed tasks have types 4,3,2 → 0-based
	// interval starts 3,2,1; then k=3 type-1 tasks (start 0).
	sets := StreamRound(6, 3)
	if len(sets) != 6 {
		t.Fatalf("round size = %d", len(sets))
	}
	wantStarts := []int{3, 2, 1, 0, 0, 0}
	for i, s := range sets {
		if s.Len() != 3 || s.Min() != wantStarts[i] || !s.IsContiguous() {
			t.Fatalf("set %d = %v, want contiguous k=3 starting at %d", i, s, wantStarts[i])
		}
	}
	fam := psets.NewFamily(6, sets...)
	if !fam.IsInterval() {
		t.Fatalf("stream sets must be intervals")
	}
	if k, ok := fam.UniformSize(); !ok || k != 3 {
		t.Fatalf("uniform size = %d %v", k, ok)
	}
}

func TestTheorem8EFTMin(t *testing.T) {
	for _, cfg := range []struct{ m, k int }{{6, 3}, {5, 2}, {8, 4}, {10, 2}, {7, 5}} {
		res, err := EFTStream(sched.MinTie{}, cfg.m, cfg.k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.AlgSched.Validate(); err != nil {
			t.Fatalf("m=%d k=%d: algorithm schedule invalid: %v", cfg.m, cfg.k, err)
		}
		want := core.Time(cfg.m - cfg.k + 1)
		if res.AlgFmax < want {
			t.Errorf("m=%d k=%d: EFT-Min Fmax = %v, want ≥ %v", cfg.m, cfg.k, res.AlgFmax, want)
		}
		if res.OptFmax != 1 {
			t.Errorf("m=%d k=%d: OPT Fmax = %v, want 1", cfg.m, cfg.k, res.OptFmax)
		}
		if res.Ratio < float64(cfg.m-cfg.k+1) {
			t.Errorf("m=%d k=%d: ratio %v below theory %v", cfg.m, cfg.k, res.Ratio, res.TheoryRatio)
		}
	}
}

func TestTheorem8ConvergesToStableProfile(t *testing.T) {
	// The EFT-Min profile converges to w_τ(j) = min(m−j, m−k) and stays
	// there (Lemmas 3-4).
	m, k := 6, 3
	steps := m * m * m
	profiles := StreamProfiles(sched.MinTie{}, m, k, steps)
	stable := StableProfile(m, k)
	// Find first time the profile equals w_τ.
	reached := -1
	for t0, w := range profiles {
		eq := true
		for j := range w {
			if w[j] != stable[j] {
				eq = false
				break
			}
		}
		if eq {
			reached = t0
			break
		}
	}
	if reached == -1 {
		t.Fatalf("profile never reached the stable profile %v; last = %v", stable, profiles[len(profiles)-1])
	}
	// Once reached, it persists.
	for t0 := reached; t0 < len(profiles); t0++ {
		for j := range stable {
			if profiles[t0][j] != stable[j] {
				t.Fatalf("profile left w_τ at t=%d: %v", t0, profiles[t0])
			}
		}
	}
}

// TestLemma2ProfilesNonIncreasing checks Lemma 2: at any time t,
// w_t(j+1) ≤ w_t(j) under EFT-Min on the adversary stream.
func TestLemma2ProfilesNonIncreasing(t *testing.T) {
	for _, cfg := range []struct{ m, k int }{{6, 3}, {8, 2}, {9, 5}} {
		profiles := StreamProfiles(sched.MinTie{}, cfg.m, cfg.k, 3*cfg.m*cfg.m)
		for t0, w := range profiles {
			for j := 0; j+1 < len(w); j++ {
				if w[j+1] > w[j]+1e-12 {
					t.Fatalf("m=%d k=%d t=%d: profile increases at j=%d: %v", cfg.m, cfg.k, t0, j, w)
				}
			}
		}
	}
}

// TestLemma4ProfileBounded checks the invariant of Lemma 4: the EFT-Min
// profile never exceeds m−k anywhere (case (i) of the lemma never triggers
// for EFT-Min).
func TestLemma4ProfileBounded(t *testing.T) {
	m, k := 7, 3
	profiles := StreamProfiles(sched.MinTie{}, m, k, 3*m*m)
	for t0, w := range profiles {
		for j, v := range w {
			if v > core.Time(m-k)+1e-12 {
				t.Fatalf("t=%d: w(%d) = %v exceeds m-k = %d", t0, j, v, m-k)
			}
		}
	}
}

func TestTheorem9EFTRand(t *testing.T) {
	m, k := 6, 3
	res, err := EFTStream(sched.RandTie{Rng: rand.New(rand.NewSource(42))}, m, k, 2*m*m*m)
	if err != nil {
		t.Fatal(err)
	}
	if res.AlgFmax < core.Time(m-k+1) {
		t.Fatalf("EFT-Rand Fmax = %v, want ≥ %d (a.s.)", res.AlgFmax, m-k+1)
	}
}

func TestTheorem10AnyTieBreak(t *testing.T) {
	m, k := 6, 3
	for _, tie := range []sched.TieBreak{
		sched.MaxTie{},
		sched.MinTie{},
		sched.RandTie{Rng: rand.New(rand.NewSource(7))},
	} {
		res, err := EFTStreamPadded(tie, m, k, 0)
		if err != nil {
			t.Fatalf("tie %s: %v", tie.Name(), err)
		}
		if err := res.AlgSched.Validate(); err != nil {
			t.Fatalf("tie %s: schedule invalid: %v", tie.Name(), err)
		}
		if res.AlgFmax < core.Time(m-k+1) {
			t.Errorf("tie %s: regular Fmax = %v, want ≥ %d", tie.Name(), res.AlgFmax, m-k+1)
		}
		if res.OptFmax >= 1.5 {
			t.Errorf("tie %s: OPT bound = %v should be 1 + o(1)", tie.Name(), res.OptFmax)
		}
	}
}

func TestTheorem10NeededForEFTMax(t *testing.T) {
	// Motivation for Theorem 10: the unpadded stream does NOT drive EFT-Max
	// to m−k+1 (its ties resolve away from the trap), the padded one does.
	m, k := 6, 3
	plain, err := EFTStream(sched.MaxTie{}, m, k, m*m*m)
	if err != nil {
		t.Fatal(err)
	}
	padded, err := EFTStreamPadded(sched.MaxTie{}, m, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if padded.AlgFmax < core.Time(m-k+1) {
		t.Fatalf("padded stream should trap EFT-Max: Fmax = %v", padded.AlgFmax)
	}
	t.Logf("EFT-Max: plain stream Fmax = %v, padded Fmax = %v", plain.AlgFmax, padded.AlgFmax)
}

func TestTheorem3Inclusive(t *testing.T) {
	for _, alg := range []sched.Online{
		sched.NewEFT(sched.MinTie{}),
		sched.NewEFT(sched.MaxTie{}),
		sched.NewJSQ(),
	} {
		mPrime := 16
		res, err := Inclusive(alg, mPrime, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.AlgSched.Validate(); err != nil {
			t.Fatalf("%s: schedule invalid: %v", alg.Name(), err)
		}
		fam := psets.FromInstance(res.Inst)
		if !fam.IsInclusive() {
			t.Fatalf("%s: adversary family must be inclusive", alg.Name())
		}
		// ratio ≥ (log2(m)+1) − log2(m)/p ≈ theory.
		if res.Ratio < res.TheoryRatio-0.01 {
			t.Errorf("%s: ratio %v below theory %v", alg.Name(), res.Ratio, res.TheoryRatio)
		}
	}
}

func TestTheorem3NonPowerOfTwo(t *testing.T) {
	res, err := Inclusive(sched.NewEFT(sched.MinTie{}), 13, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.M != 8 {
		t.Fatalf("m' = 13 should round down to m = 8, got %d", res.M)
	}
	if res.TheoryRatio != 4 { // ⌊log2 13 + 1⌋ = 4
		t.Fatalf("theory = %v, want 4", res.TheoryRatio)
	}
}

func TestTheorem4FixedK(t *testing.T) {
	for _, cfg := range []struct{ mPrime, k int }{{16, 2}, {27, 3}, {16, 4}} {
		res, err := FixedSizeK(sched.NewEFT(sched.MinTie{}), cfg.mPrime, cfg.k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.AlgSched.Validate(); err != nil {
			t.Fatalf("schedule invalid: %v", err)
		}
		fam := psets.FromInstance(res.Inst)
		if k, ok := fam.UniformSize(); !ok || k != cfg.k {
			t.Fatalf("family size = %d %v, want uniform %d", k, ok, cfg.k)
		}
		if res.Ratio < res.TheoryRatio-0.01 {
			t.Errorf("m'=%d k=%d: ratio %v below theory %v", cfg.mPrime, cfg.k, res.Ratio, res.TheoryRatio)
		}
	}
}

func TestTheorem5Nested(t *testing.T) {
	for _, alg := range []sched.Online{
		sched.NewEFT(sched.MinTie{}),
		sched.NewEFT(sched.MaxTie{}),
		sched.NewJSQ(),
	} {
		mPrime := 16
		res, err := Nested(alg, mPrime)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.AlgSched.Validate(); err != nil {
			t.Fatalf("%s: schedule invalid: %v", alg.Name(), err)
		}
		fam := psets.FromInstance(res.Inst)
		if !fam.IsNested() {
			t.Fatalf("%s: adversary family must be nested", alg.Name())
		}
		if res.OptFmax > 3 {
			t.Fatalf("%s: OPT Fmax = %v, want ≤ 3", alg.Name(), res.OptFmax)
		}
		logm := floorLog(2, mPrime)
		if res.AlgFmax < core.Time(logm+2) {
			t.Errorf("%s: Fmax = %v, want ≥ log2(m)+2 = %d", alg.Name(), res.AlgFmax, logm+2)
		}
		if res.Ratio < res.TheoryRatio-1e-9 {
			t.Errorf("%s: ratio %v below theory %v", alg.Name(), res.Ratio, res.TheoryRatio)
		}
	}
}

func TestTheorem7AnyOnline(t *testing.T) {
	const p = 1000.0
	for _, alg := range []sched.Online{
		sched.NewEFT(sched.MinTie{}),
		sched.NewEFT(sched.MaxTie{}),
		sched.NewJSQ(),
	} {
		res, err := IntervalAnyOnline(alg, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.AlgSched.Validate(); err != nil {
			t.Fatalf("%s: schedule invalid: %v", alg.Name(), err)
		}
		fam := psets.FromInstance(res.Inst)
		if !fam.IsInterval() {
			t.Fatalf("%s: adversary family must be intervals", alg.Name())
		}
		if res.Ratio < 2-2/p {
			t.Errorf("%s: ratio %v, want ≥ 2 − 2/p", alg.Name(), res.Ratio)
		}
	}
}

func TestAdversaryArgumentValidation(t *testing.T) {
	eft := sched.NewEFT(sched.MinTie{})
	if _, err := EFTStream(sched.MinTie{}, 4, 1, 1); err == nil {
		t.Errorf("k=1 should be rejected")
	}
	if _, err := EFTStream(sched.MinTie{}, 4, 4, 1); err == nil {
		t.Errorf("k=m should be rejected")
	}
	if _, err := Inclusive(eft, 1, 0); err == nil {
		t.Errorf("m=1 should be rejected")
	}
	if _, err := Inclusive(eft, 8, 2); err == nil {
		t.Errorf("p ≤ log2(m) should be rejected")
	}
	if _, err := FixedSizeK(eft, 8, 1, 0); err == nil {
		t.Errorf("k=1 should be rejected")
	}
	if _, err := FixedSizeK(eft, 2, 3, 0); err == nil {
		t.Errorf("m < k should be rejected")
	}
	if _, err := Nested(eft, 1); err == nil {
		t.Errorf("m=1 should be rejected")
	}
	if _, err := IntervalAnyOnline(eft, 0.5); err == nil {
		t.Errorf("p ≤ 1 should be rejected")
	}
	if _, err := EFTStreamPadded(sched.MinTie{}, 4, 1, 1); err == nil {
		t.Errorf("padded k=1 should be rejected")
	}
}

func TestStableProfileShape(t *testing.T) {
	// m=6, k=3: w_τ = (3,3,3,2,1,0) in 1-based machine order.
	got := StableProfile(6, 3)
	want := []core.Time{3, 3, 3, 2, 1, 0}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("StableProfile = %v, want %v", got, want)
		}
	}
}

func TestFigure3FirstRound(t *testing.T) {
	// Figure 3 shows EFT-Min on m=6, k=3. In round 0 all machines are
	// empty, so EFT-Min puts each typed task (types 4,3,2 → intervals
	// starting at M4,M3,M2) on the first machine of its interval, then the
	// three type-1 tasks on M1 (idle), M5 and M6 (the remaining idle
	// machines of the tie set {M1,M5,M6}∩{M1,M2,M3} = {M1} first, then the
	// still-idle machines of {M1..M3}: M2, M3).
	inst, s := StreamSchedule(sched.MinTie{}, 6, 3, 1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.N() != 6 {
		t.Fatalf("n = %d", inst.N())
	}
	// Typed tasks land on the lowest machine of their interval.
	wantTyped := []int{3, 2, 1}
	for i, want := range wantTyped {
		if s.Machine[i] != want {
			t.Errorf("task %d on M%d, want M%d", i, s.Machine[i]+1, want+1)
		}
	}
	// The three type-1 tasks: M1 is idle (start 0); machines M2, M3 are
	// busy until time 1, so the remaining two start at 0 only if another
	// machine of {M1..M3} is idle — there is none, so they queue with
	// start 1 on M2 and M3 (the earliest-finishing eligible machines).
	if s.Machine[3] != 0 || s.Start[3] != 0 {
		t.Errorf("first type-1 task on M%d@%v, want M1@0", s.Machine[3]+1, s.Start[3])
	}
	for _, i := range []int{4, 5} {
		if s.Start[i] != 1 {
			t.Errorf("type-1 task %d starts at %v, want 1", i, s.Start[i])
		}
	}
}

func TestResultString(t *testing.T) {
	res, err := EFTStream(sched.MinTie{}, 5, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.String() == "" {
		t.Fatal("empty String")
	}
	if math.IsNaN(res.Ratio) {
		t.Fatal("NaN ratio")
	}
}

// TestTheorem8ExactValue pins the exact worst case: EFT-Min on the full
// stream reaches exactly m−k+1 (Lemma 4 caps the profile at m−k, so no
// task can flow longer).
func TestTheorem8ExactValue(t *testing.T) {
	for _, cfg := range []struct{ m, k int }{{6, 3}, {8, 2}, {9, 4}} {
		res, err := EFTStream(sched.MinTie{}, cfg.m, cfg.k, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := core.Time(cfg.m - cfg.k + 1)
		if res.AlgFmax != want {
			t.Errorf("m=%d k=%d: Fmax = %v, want exactly %v", cfg.m, cfg.k, res.AlgFmax, want)
		}
	}
}

// TestTheorem3ScalesLogarithmically: the inclusive adversary's ratio tracks
// ⌊log2(m)+1⌋ across machine scales.
func TestTheorem3ScalesLogarithmically(t *testing.T) {
	prev := 0.0
	for _, m := range []int{4, 8, 16, 32, 64} {
		res, err := Inclusive(sched.NewEFT(sched.MinTie{}), m, 0)
		if err != nil {
			t.Fatal(err)
		}
		wantTheory := float64(floorLog(2, m) + 1)
		if res.TheoryRatio != wantTheory {
			t.Fatalf("m=%d: theory = %v, want %v", m, res.TheoryRatio, wantTheory)
		}
		if res.Ratio < wantTheory-0.01 {
			t.Fatalf("m=%d: ratio %v below theory %v", m, res.Ratio, wantTheory)
		}
		if res.Ratio <= prev {
			t.Fatalf("m=%d: ratio %v did not grow from %v", m, res.Ratio, prev)
		}
		prev = res.Ratio
	}
}

// TestTheorem8ScalesLinearly: the interval stream's ratio is exactly
// m−k+1, i.e. linear in m for fixed k.
func TestTheorem8ScalesLinearly(t *testing.T) {
	for _, m := range []int{5, 8, 12, 16} {
		res, err := EFTStream(sched.MinTie{}, m, 3, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Ratio != float64(m-2) {
			t.Fatalf("m=%d: ratio = %v, want %d", m, res.Ratio, m-2)
		}
	}
}
