package adversary

import (
	"fmt"

	"flowsched/internal/core"
	"flowsched/internal/sched"
)

// Padding constants for the Theorem 10 construction. Powers of two keep all
// time arithmetic exact in float64, so the no-tie argument of the proof
// holds bit-for-bit: δ is the per-machine stagger (machine M_j is delayed by
// (j+1)·δ) and ε spaces the first-round probe tasks. The proof needs
// m·δ < 1 and ε < δ/(2m), which holds here for every m ≤ 512.
const (
	Delta   = 1.0 / (1 << 16) // δ
	Epsilon = 1.0 / (1 << 27) // ε
)

// EFTStreamPadded runs the Theorem 10 adversary: the Theorem 8 regular
// stream interleaved with carefully crafted small tasks that stagger every
// machine's availability by (j+1)·δ, removing all ties. EFT with ANY
// tie-break then emulates EFT-Min on the regular tasks and its Fmax reaches
// m − k + 1 (up to o(1)), while OPT stays at 1 + o(1). steps ≤ 0 defaults
// to m³.
//
// The returned Result's OptFmax is the analytic upper bound
// 1 + total small-task volume (the proof's 1 + o(1)); OptSched is nil.
func EFTStreamPadded(tie sched.TieBreak, m, k, steps int) (*Result, error) {
	if k <= 1 || k >= m {
		return nil, fmt.Errorf("adversary: Theorem 10 needs 1 < k < m, got m=%d k=%d", m, k)
	}
	if m > 512 {
		return nil, fmt.Errorf("adversary: Theorem 10 padding constants support m ≤ 512, got %d", m)
	}
	if steps <= 0 {
		steps = m * m * m
	}
	eft := sched.NewEFT(tie)
	r := newRunner(eft, m)
	round := StreamRound(m, k)

	regularFmax := core.Time(0)
	smallVolume := core.Time(0)

	// smallInterval returns an interval of size k covering machine j.
	smallInterval := func(j int) core.ProcSet {
		if j+k <= m {
			return core.Interval(j, j+k-1)
		}
		return core.Interval(m-k, m-1)
	}

	for t := 0; t < steps; t++ {
		now := core.Time(t)

		// Round 1: while some machine is idle, probe with a task of
		// duration c·ε whose interval covers the lowest-indexed idle
		// machine.
		c := 1
		type probe struct {
			c    int
			mach int
		}
		var probes []probe
		for {
			idle := -1
			for j := 0; j < m; j++ {
				if r.completion[j] <= now {
					idle = j
					break
				}
			}
			if idle == -1 {
				break
			}
			dur := core.Time(c) * Epsilon
			mach, _ := r.submit(now, dur, smallInterval(idle))
			smallVolume += dur
			probes = append(probes, probe{c: c, mach: mach})
			c++
			if c > m+1 {
				return nil, fmt.Errorf("adversary: Theorem 10 round 1 did not terminate")
			}
		}

		// Round 2: pin each probed machine to finish exactly at t + (j+1)δ.
		for _, pr := range probes {
			dur := core.Time(pr.mach+1)*Delta - core.Time(pr.c)*Epsilon
			mach, _ := r.submit(now, dur, smallInterval(pr.mach))
			smallVolume += dur
			if mach != pr.mach {
				return nil, fmt.Errorf("adversary: Theorem 10 second-round task for M%d landed on M%d",
					pr.mach+1, mach+1)
			}
			if got, want := r.completion[mach], now+core.Time(mach+1)*Delta; got != want {
				return nil, fmt.Errorf("adversary: Theorem 10 stagger broken on M%d: completes %v, want %v",
					mach+1, got, want)
			}
		}

		// Regular tasks of the Theorem 8 stream.
		for _, set := range round {
			_, start := r.submit(now, 1, set)
			if f := start + 1 - now; f > regularFmax {
				regularFmax = f
			}
		}
	}

	inst, algSched := r.finish()

	optUpper := 1 + smallVolume // the proof's 1 + o(1) bound
	res := &Result{
		Name:        "Theorem 10 (padded interval stream)",
		AlgName:     eft.Name(),
		M:           m,
		K:           k,
		AlgFmax:     regularFmax,
		OptFmax:     optUpper,
		Inst:        inst,
		AlgSched:    algSched,
		TheoryRatio: float64(m - k + 1),
		Notes: fmt.Sprintf("δ=%g ε=%g; AlgFmax is over regular tasks; OptFmax is the analytic bound 1 + small volume (%.3g)",
			Delta, Epsilon, smallVolume),
	}
	res.Ratio = float64(res.AlgFmax / res.OptFmax)
	return res, nil
}
