package adversary

import (
	"fmt"
	"sort"

	"flowsched/internal/core"
	"flowsched/internal/sched"
)

// Inclusive runs the Theorem 3 adversary against an immediate-dispatch
// scheduler: on m = 2^⌊log2(m')⌋ machines it releases, at each time ℓ−1,
// m/2^ℓ tasks of length p restricted to a shrinking chain of machine sets
// M(1) ⊇ M(2) ⊇ ..., where M(ℓ+1) keeps the most loaded half of M(ℓ); a
// final task lands on the single most loaded machine. The processing sets
// form an inclusive family and the algorithm's Fmax reaches
// (log2(m)+1)·p − log2(m) while OPT achieves p, for a ratio approaching
// ⌊log2(m') + 1⌋ as p → ∞.
//
// p must exceed log2(m); p ≤ 0 defaults to 1000·log2(m).
func Inclusive(alg sched.Online, mPrime int, p core.Time) (*Result, error) {
	if mPrime < 2 {
		return nil, fmt.Errorf("adversary: Theorem 3 needs at least 2 machines")
	}
	logm := floorLog(2, mPrime)
	m := powInt(2, logm)
	if p <= 0 {
		p = core.Time(1000 * logm)
	}
	if p <= core.Time(logm) {
		return nil, fmt.Errorf("adversary: Theorem 3 needs p > log2(m) = %d, got %v", logm, p)
	}

	r := newRunner(alg, m)
	// current = M(ℓ), as a sorted slice of machine indices.
	current := make([]int, m)
	for j := range current {
		current[j] = j
	}
	counts := make([]int, m) // tasks allocated per machine so far

	// chain[ℓ-1] = M(ℓ) for the OPT reconstruction.
	chain := [][]int{append([]int(nil), current...)}

	for l := 1; l <= logm; l++ {
		set := core.NewProcSet(current...)
		numTasks := m / powInt(2, l)
		for x := 0; x < numTasks; x++ {
			mach, _ := r.submit(core.Time(l-1), p, set)
			counts[mach]++
		}
		// M(ℓ+1): the numTasks most loaded machines of M(ℓ) (ties broken by
		// index for determinism).
		next := append([]int(nil), current...)
		sort.SliceStable(next, func(a, b int) bool {
			if counts[next[a]] != counts[next[b]] {
				return counts[next[a]] > counts[next[b]]
			}
			return next[a] < next[b]
		})
		next = next[:numTasks]
		sort.Ints(next)
		current = next
		chain = append(chain, append([]int(nil), current...))
	}
	// Final task at time log2(m) on the single remaining machine.
	finalSet := core.NewProcSet(current...)
	fm, _ := r.submit(core.Time(logm), p, finalSet)
	counts[fm]++

	inst, algSched := r.finish()

	// OPT: tasks of round ℓ (released at ℓ−1 with set M(ℓ)) go one per
	// machine of M(ℓ) \ M(ℓ+1), starting at release; the final task goes on
	// M(logm+1)'s single machine at its release.
	opt := core.NewSchedule(inst)
	i := 0
	for l := 1; l <= logm; l++ {
		free := core.NewProcSet(chain[l-1]...).Minus(core.NewProcSet(chain[l]...))
		numTasks := m / powInt(2, l)
		if len(free) != numTasks {
			return nil, fmt.Errorf("adversary: Theorem 3 internal error: |M(%d)\\M(%d)| = %d, want %d",
				l, l+1, len(free), numTasks)
		}
		for x := 0; x < numTasks; x++ {
			opt.Assign(i, free[x], core.Time(l-1))
			i++
		}
	}
	opt.Assign(i, chain[logm][0], core.Time(logm))
	if err := opt.Validate(); err != nil {
		return nil, fmt.Errorf("adversary: Theorem 3 OPT schedule invalid: %w", err)
	}

	res := &Result{
		Name:        "Theorem 3 (inclusive)",
		AlgName:     alg.Name(),
		M:           m,
		AlgFmax:     algSched.MaxFlow(),
		OptFmax:     opt.MaxFlow(),
		Inst:        inst,
		AlgSched:    algSched,
		OptSched:    opt,
		TheoryRatio: float64(floorLog(2, mPrime) + 1),
		Notes:       fmt.Sprintf("p=%v; ratio → ⌊log2(m')+1⌋ as p → ∞", p),
	}
	res.Ratio = float64(res.AlgFmax / res.OptFmax)
	return res, nil
}

// FixedSizeK runs the Theorem 4 adversary against an immediate-dispatch
// scheduler: on m = k^⌊log_k(m')⌋ machines, round ℓ releases m/k^ℓ tasks
// whose size-k processing sets partition M(ℓ−1); wherever the algorithm
// puts them becomes M(ℓ). The algorithm accumulates log_k(m) tasks on one
// machine while OPT achieves p, for a ratio approaching ⌊log_k(m')⌋.
func FixedSizeK(alg sched.Online, mPrime, k int, p core.Time) (*Result, error) {
	if k < 2 {
		return nil, fmt.Errorf("adversary: Theorem 4 needs k ≥ 2")
	}
	if mPrime < k {
		return nil, fmt.Errorf("adversary: Theorem 4 needs m ≥ k")
	}
	logm := floorLog(k, mPrime)
	if logm < 1 {
		return nil, fmt.Errorf("adversary: Theorem 4 needs m ≥ k")
	}
	m := powInt(k, logm)
	if p <= 0 {
		p = core.Time(1000 * logm)
	}
	if p <= core.Time(logm) {
		return nil, fmt.Errorf("adversary: Theorem 4 needs p > log_k(m) = %d, got %v", logm, p)
	}

	r := newRunner(alg, m)
	current := make([]int, m) // M(ℓ-1)
	for j := range current {
		current[j] = j
	}
	type roundInfo struct {
		sets   []core.ProcSet
		chosen []int // machine picked by the algorithm for each task
	}
	var rounds []roundInfo

	for l := 1; l <= logm; l++ {
		numTasks := m / powInt(k, l)
		info := roundInfo{}
		var next []int
		for x := 0; x < numTasks; x++ {
			// Partition M(ℓ−1) into consecutive groups of k.
			group := current[x*k : (x+1)*k]
			set := core.NewProcSet(group...)
			mach, _ := r.submit(core.Time(l-1), p, set)
			info.sets = append(info.sets, set)
			info.chosen = append(info.chosen, mach)
			next = append(next, mach)
		}
		rounds = append(rounds, info)
		sort.Ints(next)
		current = next
	}

	inst, algSched := r.finish()

	// OPT: each round-ℓ task runs on a machine of its own k-set other than
	// the one the algorithm chose (that machine belongs to M(ℓ), which the
	// adversary will keep loading; all other machines of the set are used by
	// no later round).
	opt := core.NewSchedule(inst)
	i := 0
	for l, info := range rounds {
		for x, set := range info.sets {
			alt := -1
			for _, j := range set {
				if j != info.chosen[x] {
					alt = j
					break
				}
			}
			if alt == -1 {
				return nil, fmt.Errorf("adversary: Theorem 4 internal error: no alternative machine")
			}
			opt.Assign(i, alt, core.Time(l))
			i++
		}
	}
	if err := opt.Validate(); err != nil {
		return nil, fmt.Errorf("adversary: Theorem 4 OPT schedule invalid: %w", err)
	}

	res := &Result{
		Name:        "Theorem 4 (|Mi| = k)",
		AlgName:     alg.Name(),
		M:           m,
		K:           k,
		AlgFmax:     algSched.MaxFlow(),
		OptFmax:     opt.MaxFlow(),
		Inst:        inst,
		AlgSched:    algSched,
		OptSched:    opt,
		TheoryRatio: float64(floorLog(k, mPrime)),
		Notes:       fmt.Sprintf("p=%v; ratio → ⌊log_k(m')⌋ as p → ∞", p),
	}
	res.Ratio = float64(res.AlgFmax / res.OptFmax)
	return res, nil
}
