package adversary

import (
	"fmt"

	"flowsched/internal/core"
	"flowsched/internal/sched"
)

// StreamRound returns the m processing sets of one round of the Theorem 8
// adversary, in release order: for 1 ≤ i ≤ m−k the i-th task has type
// m−k−i+2 (its interval starts at machine M_{m−k−i+2}, 1-based), and the
// last k tasks have type 1 (interval {M_1..M_k}).
func StreamRound(m, k int) []core.ProcSet {
	if k <= 1 || k >= m {
		panic(fmt.Sprintf("adversary: Theorem 8 needs 1 < k < m, got m=%d k=%d", m, k))
	}
	sets := make([]core.ProcSet, 0, m)
	for i := 1; i <= m-k; i++ {
		lambda := m - k - i + 2 // 1-based type
		lo := lambda - 1        // 0-based interval start
		sets = append(sets, core.Interval(lo, lo+k-1))
	}
	for i := 0; i < k; i++ {
		sets = append(sets, core.Interval(0, k-1))
	}
	return sets
}

// streamOptMachine returns the machine (0-based) used by the proof's
// optimal strategy for the idx-th task (0-based) of a round: tasks of type
// λ ≥ 2 go to the highest machine of their interval (machine λ+k−1,
// 1-based), which are all distinct, and the k type-1 tasks fill machines
// M_1..M_k.
func streamOptMachine(m, k, idx int) int {
	if idx < m-k {
		lambda := m - k - idx + 1 // type of task idx (1-based type, idx 0-based: i=idx+1)
		return lambda + k - 2     // 0-based λ+k−1
	}
	return idx - (m - k)
}

// EFTStream runs the Theorem 8/9 adversary stream against EFT with the
// given tie-break for the given number of unit-time rounds (steps): at each
// integer time t it releases the m tasks of StreamRound. The optimal
// strategy schedules every task at its release for Fmax = 1, so the
// measured ratio equals the algorithm's Fmax, which reaches m − k + 1 for
// EFT-Min (Theorem 8) and almost surely for EFT-Rand (Theorem 9). steps ≤ 0
// defaults to m³ (the paper's convergence bound).
func EFTStream(tie sched.TieBreak, m, k, steps int) (*Result, error) {
	if k <= 1 || k >= m {
		return nil, fmt.Errorf("adversary: Theorem 8 needs 1 < k < m, got m=%d k=%d", m, k)
	}
	if steps <= 0 {
		steps = m * m * m
	}
	eft := sched.NewEFT(tie)
	r := newRunner(eft, m)
	round := StreamRound(m, k)
	for t := 0; t < steps; t++ {
		for _, set := range round {
			r.submit(core.Time(t), 1, set)
		}
	}
	inst, algSched := r.finish()

	// The proof's OPT: every task of every round starts at its release on a
	// distinct machine.
	opt := core.NewSchedule(inst)
	for t := 0; t < steps; t++ {
		for idx := 0; idx < m; idx++ {
			i := t*m + idx
			opt.Assign(i, streamOptMachine(m, k, idx), core.Time(t))
		}
	}
	if err := opt.Validate(); err != nil {
		return nil, fmt.Errorf("adversary: Theorem 8 OPT schedule invalid: %w", err)
	}

	res := &Result{
		Name:        "Theorem 8 (interval stream)",
		AlgName:     eft.Name(),
		M:           m,
		K:           k,
		AlgFmax:     algSched.MaxFlow(),
		OptFmax:     opt.MaxFlow(),
		Inst:        inst,
		AlgSched:    algSched,
		OptSched:    opt,
		TheoryRatio: float64(m - k + 1),
	}
	res.Ratio = float64(res.AlgFmax / res.OptFmax)
	return res, nil
}

// StreamProfiles runs the Theorem 8 stream and returns the schedule profile
// w_t of the algorithm at each integer time t = 0..steps, captured just
// before the adversary releases the round of time t (and, for the last
// entry, after the final round). Used to reproduce Figures 3-4 and to test
// Lemmas 2-4.
func StreamProfiles(tie sched.TieBreak, m, k, steps int) [][]core.Time {
	eft := sched.NewEFT(tie)
	r := newRunner(eft, m)
	round := StreamRound(m, k)
	profiles := make([][]core.Time, 0, steps+1)
	for t := 0; t < steps; t++ {
		profiles = append(profiles, r.waiting(core.Time(t)))
		for _, set := range round {
			r.submit(core.Time(t), 1, set)
		}
	}
	profiles = append(profiles, r.waiting(core.Time(steps)))
	return profiles
}

// StreamSchedule returns the instance and EFT schedule of the first `steps`
// rounds, for rendering Figure 3 (the paper shows m=6, k=3, t=0..3 with
// EFT-Min).
func StreamSchedule(tie sched.TieBreak, m, k, steps int) (*core.Instance, *core.Schedule) {
	eft := sched.NewEFT(tie)
	r := newRunner(eft, m)
	round := StreamRound(m, k)
	for t := 0; t < steps; t++ {
		for _, set := range round {
			r.submit(core.Time(t), 1, set)
		}
	}
	return r.finish()
}
