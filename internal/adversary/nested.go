package adversary

import (
	"fmt"

	"flowsched/internal/core"
	"flowsched/internal/sched"
)

// Nested runs the Theorem 5 adversary (adapted from Anand et al. to nested
// structures) against an online scheduler: on m = 2^⌊log2(m')⌋ machines,
// phase c (c = 0..log2(m)) works on an interval I(u_c, s_c) of s_c = m/2^c
// machines. At time t_c it releases s_c unit tasks feasible on the whole
// interval (G1) plus, at each of the F times t_c..t_c+F−1, one unit task
// pinned to each machine of the interval (G2). The next phase keeps the
// half of the interval holding the most uncompleted work. After the last
// phase one machine holds at least log2(m)+2 pending unit tasks, so the
// algorithm's Fmax is at least ⌊log2(m')+2⌋ while the proof's OPT achieves
// Fmax = 3; the competitive ratio is at least ⌊log2(m')+2⌋/3.
//
// The processing sets (intervals and singletons of a laminar chain) form a
// nested family.
func Nested(alg sched.Online, mPrime int) (*Result, error) {
	if mPrime < 2 {
		return nil, fmt.Errorf("adversary: Theorem 5 needs at least 2 machines")
	}
	logm := floorLog(2, mPrime)
	m := powInt(2, logm)
	F := logm + 2 // F ≥ log2(m) + 2

	r := newRunner(alg, m)

	type phaseInfo struct {
		u, s int // interval start and size (0-based start)
		t    int // phase start time
	}
	var phases []phaseInfo

	u, s := 0, m
	for c := 0; ; c++ {
		t := c * F
		phases = append(phases, phaseInfo{u: u, s: s, t: t})
		interval := core.Interval(u, u+s-1)
		// G1: s tasks feasible on the whole interval, released at t.
		for x := 0; x < s; x++ {
			r.submit(core.Time(t), 1, interval)
		}
		// G2: for each time t..t+F-1, one task pinned to each machine.
		for dt := 0; dt < F; dt++ {
			for j := u; j < u+s; j++ {
				r.submit(core.Time(t+dt), 1, core.NewProcSet(j))
			}
		}
		if s == 1 {
			break
		}
		// Choose the half with the most uncompleted tasks at time t+F.
		unc := r.uncompleted(core.Time(t + F))
		left, right := 0, 0
		half := s / 2
		for j := u; j < u+half; j++ {
			left += unc[j]
		}
		for j := u + half; j < u+s; j++ {
			right += unc[j]
		}
		if right > left {
			u += half
		}
		s = half
	}

	inst, algSched := r.finish()

	// OPT (from the proof): during phase c < last, the discarded half
	// executes G1 (two tasks per machine, flow ≤ 2) then its own G2 tasks
	// with flow ≤ 3; the kept half executes its G2 tasks at release. The
	// last phase (single machine) runs its G1 task first, then G2.
	opt := core.NewSchedule(inst)
	i := 0
	for c, ph := range phases {
		last := c == len(phases)-1
		if !last {
			next := phases[c+1]
			discarded := core.Interval(ph.u, ph.u+ph.s-1).Minus(core.Interval(next.u, next.u+next.s-1))
			// G1: ph.s tasks, two per discarded machine, at t and t+1.
			for x := 0; x < ph.s; x++ {
				mach := discarded[x%len(discarded)]
				start := core.Time(ph.t + x/len(discarded))
				opt.Assign(i, mach, start)
				i++
			}
			// G2: kept-half machines run them at release; discarded-half
			// machines run them 2 time units late (after their G1 pair).
			for dt := 0; dt < F; dt++ {
				for j := ph.u; j < ph.u+ph.s; j++ {
					start := core.Time(ph.t + dt)
					if discarded.Contains(j) {
						start += 2
					}
					opt.Assign(i, j, start)
					i++
				}
			}
		} else {
			// Single machine: G1 at t, G2 tasks shifted by one.
			opt.Assign(i, ph.u, core.Time(ph.t))
			i++
			for dt := 0; dt < F; dt++ {
				opt.Assign(i, ph.u, core.Time(ph.t+dt+1))
				i++
			}
		}
	}
	if err := opt.Validate(); err != nil {
		return nil, fmt.Errorf("adversary: Theorem 5 OPT schedule invalid: %w", err)
	}

	res := &Result{
		Name:        "Theorem 5 (nested)",
		AlgName:     alg.Name(),
		M:           m,
		AlgFmax:     algSched.MaxFlow(),
		OptFmax:     opt.MaxFlow(),
		Inst:        inst,
		AlgSched:    algSched,
		OptSched:    opt,
		TheoryRatio: float64(logm+2) / 3,
		Notes:       fmt.Sprintf("F=%d; algorithm Fmax ≥ log2(m)+2, OPT Fmax ≤ 3", F),
	}
	res.Ratio = float64(res.AlgFmax / res.OptFmax)
	return res, nil
}

// IntervalAnyOnline runs the Theorem 7 adversary against an online
// scheduler on m = 4 machines with fixed-size intervals k = 2: a first task
// on {M2,M3} forces the algorithm to commit; two follow-up tasks then
// saturate the side it chose. Any online algorithm's Fmax is at least
// 2p − 1 while OPT achieves p, for a ratio approaching 2 as p → ∞.
func IntervalAnyOnline(alg sched.Online, p core.Time) (*Result, error) {
	if p <= 1 {
		return nil, fmt.Errorf("adversary: Theorem 7 needs p > 1")
	}
	const m = 4
	r := newRunner(alg, m)

	// T1 on {M2,M3} (0-based {1,2}).
	mach, start := r.submit(0, p, core.NewProcSet(1, 2))

	opt := func(inst *core.Instance) *core.Schedule { return core.NewSchedule(inst) }
	var optAssign func(o *core.Schedule)

	if start >= p {
		// The algorithm delayed T1 by p: flow ≥ 2p already; OPT runs it at 0.
		inst, algSched := r.finish()
		o := opt(inst)
		o.Assign(0, 1, 0)
		if err := o.Validate(); err != nil {
			return nil, err
		}
		res := &Result{
			Name: "Theorem 7 (fixed-size interval)", AlgName: alg.Name(),
			M: m, K: 2,
			AlgFmax: algSched.MaxFlow(), OptFmax: o.MaxFlow(),
			Inst: inst, AlgSched: algSched, OptSched: o,
			TheoryRatio: 2,
			Notes:       "algorithm idled past p before starting T1",
		}
		res.Ratio = float64(res.AlgFmax / res.OptFmax)
		return res, nil
	}

	if mach == 1 {
		// Case (i): T1 on M2 → send T2, T3 on {M1,M2} at σ1+1.
		r.submit(start+1, p, core.NewProcSet(0, 1))
		r.submit(start+1, p, core.NewProcSet(0, 1))
		optAssign = func(o *core.Schedule) {
			// OPT: T1 on M3 at 0; T2 on M1 and T3 on M2 at release.
			o.Assign(0, 2, 0)
			o.Assign(1, 0, start+1)
			o.Assign(2, 1, start+1)
		}
	} else {
		// Case (ii): T1 on M3 → send T2, T3 on {M3,M4} at σ1+1.
		r.submit(start+1, p, core.NewProcSet(2, 3))
		r.submit(start+1, p, core.NewProcSet(2, 3))
		optAssign = func(o *core.Schedule) {
			// OPT: T1 on M2 at 0; T2 on M3 and T3 on M4 at release.
			o.Assign(0, 1, 0)
			o.Assign(1, 2, start+1)
			o.Assign(2, 3, start+1)
		}
	}

	inst, algSched := r.finish()
	o := opt(inst)
	optAssign(o)
	if err := o.Validate(); err != nil {
		return nil, fmt.Errorf("adversary: Theorem 7 OPT schedule invalid: %w", err)
	}

	res := &Result{
		Name: "Theorem 7 (fixed-size interval)", AlgName: alg.Name(),
		M: m, K: 2,
		AlgFmax: algSched.MaxFlow(), OptFmax: o.MaxFlow(),
		Inst: inst, AlgSched: algSched, OptSched: o,
		TheoryRatio: 2,
		Notes:       "ratio → 2 as p → ∞",
	}
	res.Ratio = float64(res.AlgFmax / res.OptFmax)
	return res, nil
}
