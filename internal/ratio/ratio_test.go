package ratio

import (
	"math/rand"
	"testing"

	"flowsched/internal/core"
	"flowsched/internal/sched"
)

func TestMeasureTheorem1(t *testing.T) {
	for _, m := range []int{1, 2, 3} {
		sum, err := Measure(
			sched.NewEFT(sched.MinTie{}),
			UniformGenerator(m, 8, 4, 2),
			BruteForceBaseline(),
			60, 1,
		)
		if err != nil {
			t.Fatal(err)
		}
		bound := 3 - 2/float64(m)
		if sum.Worst > bound+1e-9 {
			t.Errorf("m=%d: worst ratio %v exceeds 3-2/m = %v (seed %d)",
				m, sum.Worst, bound, sum.WorstSeed)
		}
		if sum.Worst < 1-1e-9 || sum.Mean < 1-1e-9 {
			t.Errorf("m=%d: ratios below 1: %+v", m, sum)
		}
		if sum.P95 > sum.Worst+1e-12 {
			t.Errorf("p95 %v above worst %v", sum.P95, sum.Worst)
		}
	}
}

func TestMeasureCorollary1(t *testing.T) {
	k := 3
	sum, err := Measure(
		sched.NewEFT(sched.MinTie{}),
		DisjointGenerator(k, 2, 8, 3, 2),
		BruteForceBaseline(),
		50, 2,
	)
	if err != nil {
		t.Fatal(err)
	}
	if bound := 3 - 2/float64(k); sum.Worst > bound+1e-9 {
		t.Errorf("worst ratio %v exceeds 3-2/k = %v", sum.Worst, bound)
	}
}

func TestMeasureAgainstLowerBound(t *testing.T) {
	// Ratios vs the lower bound are ≥ ratios vs OPT but still finite and
	// ≥ 1 is NOT guaranteed (LB ≤ OPT ≤ alg, so ratio ≥ 1 actually holds).
	sum, err := Measure(
		sched.NewEFT(sched.MinTie{}),
		UniformGenerator(2, 10, 5, 2),
		LowerBoundBaseline(),
		40, 3,
	)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Worst < 1-1e-9 {
		t.Errorf("algorithm beat its own lower bound: %+v", sum)
	}
}

func TestMeasureWorstSeedReproduces(t *testing.T) {
	gen := UniformGenerator(2, 8, 4, 2)
	alg := sched.NewEFT(sched.MinTie{})
	base := BruteForceBaseline()
	sum, err := Measure(alg, gen, base, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Re-derive the worst instance from its seed and confirm the ratio.
	rng := rand.New(rand.NewSource(sum.WorstSeed))
	inst := gen(rng)
	s, err := alg.Run(inst)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := base(inst)
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(s.MaxFlow() / ref); got != sum.Worst {
		t.Fatalf("worst seed reproduces ratio %v, summary says %v", got, sum.Worst)
	}
}

func TestMeasureErrors(t *testing.T) {
	gen := UniformGenerator(2, 4, 2, 1)
	if _, err := Measure(sched.NewEFT(nil), gen, BruteForceBaseline(), 0, 1); err == nil {
		t.Errorf("zero trials accepted")
	}
	// Baseline returning zero.
	zero := func(*core.Instance) (core.Time, error) { return 0, nil }
	if _, err := Measure(sched.NewEFT(nil), gen, zero, 3, 1); err == nil {
		t.Errorf("zero baseline accepted")
	}
	// FIFO on restricted instances errors through.
	restricted := DisjointGenerator(2, 2, 5, 2, 1)
	if _, err := Measure(&sched.FIFO{}, restricted, BruteForceBaseline(), 3, 1); err == nil {
		t.Errorf("FIFO on restricted should error")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{Trials: 5, Worst: 1.5, Mean: 1.2, P95: 1.4, WorstSeed: 9}
	if s.String() == "" {
		t.Fatal("empty string")
	}
}
