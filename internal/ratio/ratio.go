// Package ratio is the empirical competitiveness harness: it samples
// random instances from a generator, runs a scheduling algorithm against a
// baseline (an exact optimum or a certified lower bound), and summarizes
// the observed Fmax ratios. The experiment drivers use it to verify upper
// bounds (Theorem 1, Corollary 1); library users can point it at their own
// schedulers.
package ratio

import (
	"fmt"
	"math/rand"

	"flowsched/internal/core"
	"flowsched/internal/offline"
	"flowsched/internal/sched"
	"flowsched/internal/stats"
)

// Generator draws a random instance.
type Generator func(rng *rand.Rand) *core.Instance

// Baseline returns a reference value for an instance: an exact optimal
// Fmax for true ratios, or a certified lower bound for upper estimates.
type Baseline func(inst *core.Instance) (core.Time, error)

// Summary reports the sampled ratio distribution.
type Summary struct {
	Trials      int
	Worst, Mean float64
	P95         float64
	WorstSeed   int64 // seed of the worst instance, for reproduction
}

func (s Summary) String() string {
	return fmt.Sprintf("trials=%d worst=%.4f mean=%.4f p95=%.4f (worst seed %d)",
		s.Trials, s.Worst, s.Mean, s.P95, s.WorstSeed)
}

// Measure samples `trials` instances (seeded deterministically from seed)
// and returns the ratio summary of alg's Fmax against the baseline.
// Baselines returning 0 make the ratio undefined; such trials error out.
func Measure(alg sched.Algorithm, gen Generator, base Baseline, trials int, seed int64) (Summary, error) {
	if trials < 1 {
		return Summary{}, fmt.Errorf("ratio: need at least one trial")
	}
	ratios := make([]float64, 0, trials)
	worstSeed := seed
	worst := 0.0
	for trial := 0; trial < trials; trial++ {
		trialSeed := seed + int64(trial)
		rng := rand.New(rand.NewSource(trialSeed))
		inst := gen(rng)
		if err := inst.Validate(); err != nil {
			return Summary{}, fmt.Errorf("ratio: generator produced invalid instance: %w", err)
		}
		s, err := alg.Run(inst)
		if err != nil {
			return Summary{}, fmt.Errorf("ratio: %s: %w", alg.Name(), err)
		}
		ref, err := base(inst)
		if err != nil {
			return Summary{}, fmt.Errorf("ratio: baseline: %w", err)
		}
		if ref <= 0 {
			return Summary{}, fmt.Errorf("ratio: baseline returned %v (undefined ratio)", ref)
		}
		r := float64(s.MaxFlow() / ref)
		ratios = append(ratios, r)
		if r > worst {
			worst, worstSeed = r, trialSeed
		}
	}
	return Summary{
		Trials:    trials,
		Worst:     worst,
		Mean:      stats.Mean(ratios),
		P95:       stats.Quantile(ratios, 0.95),
		WorstSeed: worstSeed,
	}, nil
}

// BruteForceBaseline returns the exact optimal Fmax (instances must stay
// within offline.MaxBruteForceTasks).
func BruteForceBaseline() Baseline {
	return func(inst *core.Instance) (core.Time, error) {
		s, err := offline.BruteForce(inst)
		if err != nil {
			return 0, err
		}
		return s.MaxFlow(), nil
	}
}

// LowerBoundBaseline returns the certified lower bound; ratios measured
// against it are upper estimates of the true competitive ratio.
func LowerBoundBaseline() Baseline {
	return func(inst *core.Instance) (core.Time, error) {
		return offline.LowerBound(inst), nil
	}
}

// UniformGenerator draws unrestricted instances: n tasks, Poisson-ish
// releases over [0, horizon), processing times uniform in (0, pmax].
func UniformGenerator(m, n int, horizon, pmax core.Time) Generator {
	return func(rng *rand.Rand) *core.Instance {
		tasks := make([]core.Task, n)
		for i := range tasks {
			tasks[i] = core.Task{
				Release: core.Time(rng.Float64()) * horizon,
				Proc:    core.Time(rng.Float64())*pmax + pmax*1e-3,
			}
		}
		return core.NewInstance(m, tasks)
	}
}

// DisjointGenerator draws instances on blocks of k machines (×blocks),
// every task restricted to one block — the Corollary 1 setting.
func DisjointGenerator(k, blocks, n int, horizon, pmax core.Time) Generator {
	return func(rng *rand.Rand) *core.Instance {
		tasks := make([]core.Task, n)
		for i := range tasks {
			b := rng.Intn(blocks)
			tasks[i] = core.Task{
				Release: core.Time(rng.Float64()) * horizon,
				Proc:    core.Time(rng.Float64())*pmax + pmax*1e-3,
				Set:     core.Interval(b*k, b*k+k-1),
			}
		}
		return core.NewInstance(k*blocks, tasks)
	}
}
