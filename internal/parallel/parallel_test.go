package parallel

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForEachRunsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		var count int64
		seen := make([]int32, 1000)
		ForEach(1000, workers, func(i int) {
			atomic.AddInt64(&count, 1)
			atomic.AddInt32(&seen[i], 1)
		})
		if count != 1000 {
			t.Fatalf("workers=%d: ran %d jobs", workers, count)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ran := false
	ForEach(0, 4, func(i int) { ran = true })
	ForEach(-3, 4, func(i int) { ran = true })
	if ran {
		t.Fatal("fn ran for empty range")
	}
}

func TestMapOrder(t *testing.T) {
	out := Map(500, 8, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapErrReturnsLowestError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	_, err := MapErr(10, 4, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, errB
		case 7:
			return 0, errA
		}
		return i, nil
	})
	if !errors.Is(err, errB) {
		t.Fatalf("err = %v, want the lowest-indexed error", err)
	}
	out, err := MapErr(5, 2, func(i int) (int, error) { return i, nil })
	if err != nil || out[4] != 4 {
		t.Fatalf("clean MapErr: %v %v", out, err)
	}
}

// TestDeterministicResults checks that parallel and sequential runs produce
// identical outputs when jobs derive everything from their index.
func TestDeterministicResults(t *testing.T) {
	prop := func(seed int64) bool {
		job := func(i int) int64 {
			x := int64(i)*2654435761 + seed
			x ^= x >> 13
			return x
		}
		seq := Map(200, 1, job)
		par := Map(200, 16, job)
		for i := range seq {
			if seq[i] != par[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestForEachProgressCounts: the progress callback sees a strictly
// increasing done count ending at n, regardless of worker count.
func TestForEachProgressCounts(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		var seen []int
		ran := make([]bool, 50)
		ForEachProgress(50, workers, func(done, total int) {
			if total != 50 {
				t.Errorf("total = %d, want 50", total)
			}
			mu.Lock()
			seen = append(seen, done)
			mu.Unlock()
		}, func(i int) { ran[i] = true })
		if len(seen) != 50 {
			t.Fatalf("workers=%d: %d progress calls, want 50", workers, len(seen))
		}
		for i, d := range seen {
			if d != i+1 {
				t.Fatalf("workers=%d: progress %v not strictly increasing", workers, seen)
			}
		}
		for i, ok := range ran {
			if !ok {
				t.Fatalf("workers=%d: job %d never ran", workers, i)
			}
		}
	}
}

// TestForEachProgressNilReport: a nil reporter degrades to plain ForEach.
func TestForEachProgressNilReport(t *testing.T) {
	count := 0
	ForEachProgress(10, 1, nil, func(i int) { count++ })
	if count != 10 {
		t.Fatalf("ran %d jobs, want 10", count)
	}
}

// TestMapErrProgress: results stay index-ordered and errored jobs still
// count toward progress.
func TestMapErrProgress(t *testing.T) {
	calls := 0
	out, err := MapErrProgress(20, 4, func(done, total int) { calls++ }, func(i int) (int, error) {
		if i == 7 {
			return 0, errBoom
		}
		return i * i, nil
	})
	if err != errBoom {
		t.Fatalf("err = %v, want errBoom", err)
	}
	if calls != 20 {
		t.Fatalf("progress calls = %d, want 20", calls)
	}
	if out[6] != 36 || out[19] != 361 {
		t.Fatalf("results out of order: %v", out)
	}
}

var errBoom = errors.New("boom")
