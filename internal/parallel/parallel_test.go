package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForEachRunsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		var count int64
		seen := make([]int32, 1000)
		ForEach(1000, workers, func(i int) {
			atomic.AddInt64(&count, 1)
			atomic.AddInt32(&seen[i], 1)
		})
		if count != 1000 {
			t.Fatalf("workers=%d: ran %d jobs", workers, count)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ran := false
	ForEach(0, 4, func(i int) { ran = true })
	ForEach(-3, 4, func(i int) { ran = true })
	if ran {
		t.Fatal("fn ran for empty range")
	}
}

func TestMapOrder(t *testing.T) {
	out := Map(500, 8, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapErrReturnsLowestError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	_, err := MapErr(10, 4, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, errB
		case 7:
			return 0, errA
		}
		return i, nil
	})
	if !errors.Is(err, errB) {
		t.Fatalf("err = %v, want the lowest-indexed error", err)
	}
	out, err := MapErr(5, 2, func(i int) (int, error) { return i, nil })
	if err != nil || out[4] != 4 {
		t.Fatalf("clean MapErr: %v %v", out, err)
	}
}

// TestDeterministicResults checks that parallel and sequential runs produce
// identical outputs when jobs derive everything from their index.
func TestDeterministicResults(t *testing.T) {
	prop := func(seed int64) bool {
		job := func(i int) int64 {
			x := int64(i)*2654435761 + seed
			x ^= x >> 13
			return x
		}
		seq := Map(200, 1, job)
		par := Map(200, 16, job)
		for i := range seq {
			if seq[i] != par[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
