// Package parallel provides the small deterministic fan-out primitives
// used by the experiment sweeps: a bounded worker pool that runs indexed
// jobs and writes results by index, so parallel runs produce byte-identical
// output to sequential ones (determinism lives in per-index seeds, not in
// scheduling order).
package parallel

import (
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers ≤ 0 selects GOMAXPROCS). It returns when all calls complete.
// fn must confine its writes to index-i data to stay race-free.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(n) {
			return -1
		}
		i := int(next)
		next++
		return i
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := take()
				if i < 0 {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map runs fn(i) for every i in [0, n) in parallel and returns the results
// in index order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr is Map for fallible jobs: it runs everything and returns the
// results plus the error of the lowest-indexed failed job (nil if none).
func MapErr[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(n, workers, func(i int) { out[i], errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Progress receives completion counts while a fan-out runs: done jobs out of
// total. Calls are serialized (never concurrent with each other) and done is
// strictly increasing, ending at total — so a reporter can write progress
// lines without its own locking. Completion order is scheduling-dependent;
// only the counts are deterministic.
type Progress func(done, total int)

// ForEachProgress is ForEach with a progress callback after every completed
// job. A nil report is exactly ForEach.
func ForEachProgress(n, workers int, report Progress, fn func(i int)) {
	if report == nil {
		ForEach(n, workers, fn)
		return
	}
	var mu sync.Mutex
	done := 0
	ForEach(n, workers, func(i int) {
		fn(i)
		mu.Lock()
		done++
		d := done
		report(d, n)
		mu.Unlock()
	})
}

// MapErrProgress is MapErr with a progress callback after every completed
// job (counted even when the job errors; the fan-out still runs every job).
func MapErrProgress[T any](n, workers int, report Progress, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEachProgress(n, workers, report, func(i int) { out[i], errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
