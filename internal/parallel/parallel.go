// Package parallel provides the small deterministic fan-out primitives
// used by the experiment sweeps: a bounded worker pool that runs indexed
// jobs and writes results by index, so parallel runs produce byte-identical
// output to sequential ones (determinism lives in per-index seeds, not in
// scheduling order).
package parallel

import (
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers ≤ 0 selects GOMAXPROCS). It returns when all calls complete.
// fn must confine its writes to index-i data to stay race-free.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(n) {
			return -1
		}
		i := int(next)
		next++
		return i
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := take()
				if i < 0 {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map runs fn(i) for every i in [0, n) in parallel and returns the results
// in index order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr is Map for fallible jobs: it runs everything and returns the
// results plus the error of the lowest-indexed failed job (nil if none).
func MapErr[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(n, workers, func(i int) { out[i], errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
