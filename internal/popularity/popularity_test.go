package popularity

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestZipfUniformCase(t *testing.T) {
	w := Zipf(6, 0)
	for _, x := range w {
		if math.Abs(x-1.0/6) > 1e-12 {
			t.Fatalf("s=0 should be uniform, got %v", w)
		}
	}
}

func TestZipfSumsToOne(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(40)
		s := rng.Float64() * 5
		w := Zipf(m, s)
		sum := 0.0
		for _, x := range w {
			if x <= 0 {
				return false
			}
			sum += x
		}
		// Weights are non-increasing (monotone worst-case shape).
		for i := 1; i < m; i++ {
			if w[i] > w[i-1]+1e-15 {
				return false
			}
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfKnownValues(t *testing.T) {
	// m=2, s=1: H = 1.5; weights 2/3, 1/3.
	w := Zipf(2, 1)
	if math.Abs(w[0]-2.0/3) > 1e-12 || math.Abs(w[1]-1.0/3) > 1e-12 {
		t.Fatalf("Zipf(2,1) = %v", w)
	}
}

func TestWeightsCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := Weights(Uniform, 5, 3, nil) // s ignored for uniform
	for _, x := range u {
		if math.Abs(x-0.2) > 1e-12 {
			t.Fatalf("Uniform weights = %v", u)
		}
	}
	w := Weights(Worst, 5, 1, nil)
	if !sort.IsSorted(sort.Reverse(sort.Float64Slice(w))) {
		t.Fatalf("Worst-case weights should be decreasing: %v", w)
	}
	sh := Weights(Shuffled, 5, 1, rng)
	// Same multiset as Worst.
	a := append([]float64(nil), w...)
	b := append([]float64(nil), sh...)
	sort.Float64s(a)
	sort.Float64s(b)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("Shuffled weights differ in multiset: %v vs %v", w, sh)
		}
	}
}

func TestWeightsShuffledNeedsRng(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Weights(Shuffled, 5, 1, nil)
}

func TestCaseString(t *testing.T) {
	if Uniform.String() != "Uniform" || Worst.String() != "Worst-case" || Shuffled.String() != "Shuffled" {
		t.Fatalf("Case names wrong")
	}
	if Case(9).String() != "Case(9)" {
		t.Fatalf("unknown case name")
	}
}

func TestSamplerMatchesWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := Zipf(8, 1.2)
	s := NewSampler(w)
	const n = 200000
	counts := make([]int, len(w))
	for i := 0; i < n; i++ {
		counts[s.Sample(rng)]++
	}
	for j, want := range w {
		got := float64(counts[j]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("machine %d: empirical %v vs weight %v", j, got, want)
		}
	}
}

func TestSamplerDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSampler([]float64{0, 1, 0})
	for i := 0; i < 100; i++ {
		if s.Sample(rng) != 1 {
			t.Fatalf("degenerate sampler drew wrong index")
		}
	}
}

func TestSamplerPanics(t *testing.T) {
	for _, w := range [][]float64{{}, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %v", w)
				}
			}()
			NewSampler(w)
		}()
	}
}

func TestZipfPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Zipf(0, 1) },
		func() { Zipf(3, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMaxLoadNoReplication(t *testing.T) {
	// Uniform on m machines: max weight 1/m, so λ ≤ m.
	if got := MaxLoadNoReplication(Zipf(6, 0)); math.Abs(got-6) > 1e-9 {
		t.Fatalf("uniform max load = %v, want 6", got)
	}
	// m=2, s=1: max weight 2/3 → λ = 1.5.
	if got := MaxLoadNoReplication(Zipf(2, 1)); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("max load = %v, want 1.5", got)
	}
	if !math.IsInf(MaxLoadNoReplication([]float64{0, 0}), 1) {
		t.Fatalf("zero weights should give infinite load")
	}
}
