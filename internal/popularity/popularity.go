// Package popularity implements the machine popularity model of Section 7.1:
// P(E_j) = 1/(j^s · H_{m,s}), a Zipf distribution over machines controlled
// by the shape parameter s, with the paper's three cases — Uniform (s = 0),
// Worst-case (monotonically decreasing loads) and Shuffled (a uniformly
// random permutation of the Zipf weights). It also provides an O(1) alias
// sampler for drawing task primaries.
package popularity

import (
	"fmt"
	"math"
	"math/rand"

	"flowsched/internal/stats"
)

// Case names the three popularity scenarios of the paper.
type Case int

// The paper's scenarios (Figure 8).
const (
	Uniform  Case = iota // s = 0: every machine equally popular
	Worst                // Zipf weights in decreasing order on M1..Mm
	Shuffled             // Zipf weights randomly permuted
)

func (c Case) String() string {
	switch c {
	case Uniform:
		return "Uniform"
	case Worst:
		return "Worst-case"
	case Shuffled:
		return "Shuffled"
	}
	return fmt.Sprintf("Case(%d)", int(c))
}

// Zipf returns the Zipf weights P(E_j) = 1/(j^s H_{m,s}) for j = 1..m,
// indexed 0..m-1. s = 0 degenerates to the uniform distribution. It panics
// for m < 1 or negative s (the model requires s ≥ 0).
func Zipf(m int, s float64) []float64 {
	if m < 1 {
		panic("popularity: need at least one machine")
	}
	if s < 0 || math.IsNaN(s) {
		panic("popularity: shape parameter must be non-negative")
	}
	h := stats.Harmonic(m, s)
	w := make([]float64, m)
	for j := 1; j <= m; j++ {
		w[j-1] = 1 / (math.Pow(float64(j), s) * h)
	}
	return w
}

// Weights builds the machine popularity vector for one of the paper's
// scenarios. The rng is only used in the Shuffled case to draw the
// permutation; it may be nil otherwise.
func Weights(c Case, m int, s float64, rng *rand.Rand) []float64 {
	switch c {
	case Uniform:
		return Zipf(m, 0)
	case Worst:
		return Zipf(m, s)
	case Shuffled:
		w := Zipf(m, s)
		if rng == nil {
			panic("popularity: Shuffled case needs a random source")
		}
		rng.Shuffle(len(w), func(i, j int) { w[i], w[j] = w[j], w[i] })
		return w
	}
	panic(fmt.Sprintf("popularity: unknown case %d", int(c)))
}

// Sampler draws machine indices proportionally to a weight vector using
// Walker's alias method: O(m) construction, O(1) per sample.
type Sampler struct {
	prob  []float64
	alias []int
}

// NewSampler builds an alias sampler for the (non-negative, non-zero-sum)
// weight vector.
func NewSampler(weights []float64) *Sampler {
	m := len(weights)
	if m == 0 {
		panic("popularity: empty weight vector")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("popularity: negative or NaN weight")
		}
		total += w
	}
	if total <= 0 {
		panic("popularity: weights sum to zero")
	}
	scaled := make([]float64, m)
	for i, w := range weights {
		scaled[i] = w / total * float64(m)
	}
	s := &Sampler{prob: make([]float64, m), alias: make([]int, m)}
	var small, large []int
	for i, p := range scaled {
		if p < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		s.prob[l] = scaled[l]
		s.alias[l] = g
		scaled[g] = scaled[g] + scaled[l] - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	for _, i := range large {
		s.prob[i] = 1
		s.alias[i] = i
	}
	for _, i := range small {
		s.prob[i] = 1
		s.alias[i] = i
	}
	return s
}

// Sample draws one machine index.
func (s *Sampler) Sample(rng *rand.Rand) int {
	i := rng.Intn(len(s.prob))
	if rng.Float64() < s.prob[i] {
		return i
	}
	return s.alias[i]
}

// MaxLoadNoReplication returns the largest arrival rate λ sustainable with
// no replication (|M_i| = 1): λ ≤ 1 / max_j P(E_j) (Section 7.2).
func MaxLoadNoReplication(weights []float64) float64 {
	mx := 0.0
	for _, w := range weights {
		if w > mx {
			mx = w
		}
	}
	if mx == 0 {
		return math.Inf(1)
	}
	return 1 / mx
}
