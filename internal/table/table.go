// Package table renders experiment results as aligned text tables and CSV,
// the output formats of the cmd/ tools.
package table

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	header []string
	rows   [][]string
}

// New creates a table with the given column headers.
func New(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = formatFloat(x)
		case string:
			row[i] = x
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(x float64) string {
	if x == float64(int64(x)) && x < 1e15 && x > -1e15 {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%.4g", x)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(t.header))
		for i := range t.header {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
}

func pad(s string, w int) string {
	r := []rune(s)
	if len(r) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(r))
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// RenderCSV writes the table as CSV (simple quoting: fields containing
// commas or quotes are quoted with doubled quotes).
func (t *Table) RenderCSV(w io.Writer) {
	writeCSVRow(w, t.header)
	for _, row := range t.rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		parts[i] = c
	}
	fmt.Fprintln(w, strings.Join(parts, ","))
}
