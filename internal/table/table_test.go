package table

import (
	"strings"
	"testing"
)

func TestRenderAligned(t *testing.T) {
	tb := New("name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 42.0)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name ") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[2], "1.5") {
		t.Fatalf("row = %q", lines[2])
	}
	if !strings.Contains(lines[3], "42") || strings.Contains(lines[3], "42.0") {
		t.Fatalf("integral float should render as integer: %q", lines[3])
	}
}

func TestNumRows(t *testing.T) {
	tb := New("a")
	if tb.NumRows() != 0 {
		t.Fatalf("empty table has rows")
	}
	tb.AddRow(1)
	if tb.NumRows() != 1 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestRenderCSV(t *testing.T) {
	tb := New("a", "b")
	tb.AddRow("x,y", "plain")
	tb.AddRow("quote\"inside", 3.25)
	var b strings.Builder
	tb.RenderCSV(&b)
	out := b.String()
	if !strings.Contains(out, "\"x,y\"") {
		t.Fatalf("comma field not quoted: %s", out)
	}
	if !strings.Contains(out, "\"quote\"\"inside\"") {
		t.Fatalf("quote not escaped: %s", out)
	}
	if !strings.Contains(out, "3.25") {
		t.Fatalf("value missing: %s", out)
	}
}

func TestMixedTypes(t *testing.T) {
	tb := New("col")
	tb.AddRow(7)
	tb.AddRow("s")
	tb.AddRow(1.25)
	out := tb.String()
	for _, want := range []string{"7", "s", "1.25"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHeatmapRender(t *testing.T) {
	h := &Heatmap{
		RowLabel: "s", ColLabel: "k",
		Rows:   []string{"0.0", "1.0"},
		Cols:   []string{"1", "2", "3"},
		Values: [][]float64{{0, 50, 100}, {100, 100, 100}},
		Lo:     0, Hi: 100,
	}
	out := h.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Row 0: lightest, middle, darkest shades.
	if !strings.HasPrefix(lines[1], "0.0 ") {
		t.Fatalf("row label missing: %q", lines[1])
	}
	cells := strings.TrimPrefix(lines[1], "0.0 ")
	if cells[0] != ' ' || cells[2] != '@' {
		t.Fatalf("shading wrong: %q", cells)
	}
	if !strings.Contains(out, "scale:") {
		t.Fatalf("legend missing")
	}
}

func TestHeatmapAutoScaleAndClamp(t *testing.T) {
	h := &Heatmap{
		Rows: []string{"a"}, Cols: []string{"x", "y"},
		Values: [][]float64{{2, 4}},
	}
	out := h.String()
	if !strings.Contains(out, "= 2") || !strings.Contains(out, "= 4") {
		t.Fatalf("auto scale legend wrong:\n%s", out)
	}
	// Constant matrix must not divide by zero.
	hc := &Heatmap{Rows: []string{"a"}, Cols: []string{"x"}, Values: [][]float64{{5}}}
	if s := hc.String(); !strings.Contains(s, "scale:") {
		t.Fatalf("constant heatmap broken:\n%s", s)
	}
}
