package table

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Heatmap renders a matrix as an ASCII heat map using a shade ramp, the
// terminal stand-in for the paper's Figure 10 color maps. Rows and columns
// carry labels; values are linearly binned between lo and hi (pass
// lo ≥ hi to auto-scale to the data range).
type Heatmap struct {
	RowLabel, ColLabel string
	Rows, Cols         []string
	Values             [][]float64 // [row][col]
	Lo, Hi             float64
}

// ramp runs from light to dark; values below/above the range clamp.
var ramp = []rune(" .:-=+*#%@")

// Render writes the heat map with its legend.
func (h *Heatmap) Render(w io.Writer) {
	lo, hi := h.Lo, h.Hi
	if lo >= hi {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, row := range h.Values {
			for _, v := range row {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
		if !(lo < hi) { // constant matrix
			hi = lo + 1
		}
	}
	shade := func(v float64) rune {
		x := (v - lo) / (hi - lo)
		if x < 0 {
			x = 0
		}
		if x > 1 {
			x = 1
		}
		idx := int(x * float64(len(ramp)-1))
		return ramp[idx]
	}

	labelW := len(h.RowLabel)
	for _, r := range h.Rows {
		if len(r) > labelW {
			labelW = len(r)
		}
	}
	// Header: column labels vertically compressed to their first character
	// row if longer than one character; print full labels when they fit.
	fmt.Fprintf(w, "%-*s ", labelW, h.RowLabel)
	for _, c := range h.Cols {
		fmt.Fprintf(w, "%s", lastChar(c))
	}
	fmt.Fprintf(w, "  (%s)\n", h.ColLabel)
	for i, r := range h.Rows {
		fmt.Fprintf(w, "%-*s ", labelW, r)
		for j := range h.Cols {
			fmt.Fprintf(w, "%c", shade(h.Values[i][j]))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nscale: '%c' = %.3g … '%c' = %.3g\n", ramp[0], lo, ramp[len(ramp)-1], hi)
}

// lastChar returns the final character of a label so multi-digit column
// labels (10, 11, ...) stay one cell wide yet distinguishable.
func lastChar(s string) string {
	if s == "" {
		return " "
	}
	rs := []rune(s)
	return string(rs[len(rs)-1])
}

// String renders to a string.
func (h *Heatmap) String() string {
	var b strings.Builder
	h.Render(&b)
	return b.String()
}
