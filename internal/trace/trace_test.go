package trace

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"flowsched/internal/core"
	"flowsched/internal/sched"
)

func smallSchedule(t *testing.T) *core.Schedule {
	t.Helper()
	inst := core.NewInstance(2, []core.Task{
		{Release: 0, Proc: 2},
		{Release: 0, Proc: 1},
		{Release: 1, Proc: 1},
	})
	s, err := sched.NewEFT(sched.MinTie{}).Run(inst)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFromScheduleOrdering(t *testing.T) {
	s := smallSchedule(t)
	events := FromSchedule(s)
	if len(events) != 9 {
		t.Fatalf("events = %d, want 9", len(events))
	}
	prev := core.Time(-1)
	for _, e := range events {
		if e.Time < prev {
			t.Fatalf("events out of time order")
		}
		prev = e.Time
	}
	if err := Validate(events, s.Inst.N()); err != nil {
		t.Fatal(err)
	}
}

func TestCompletionBeforeArrivalAtTies(t *testing.T) {
	// Task 1 completes at t=1, task 2 arrives at t=1: completion first.
	s := smallSchedule(t)
	events := FromSchedule(s)
	for i := 1; i < len(events); i++ {
		if events[i].Time == events[i-1].Time &&
			events[i-1].Kind == Arrival && events[i].Kind == Completion {
			t.Fatalf("completion should precede arrival at equal times")
		}
	}
}

func TestQueueProfileAndPeak(t *testing.T) {
	s := smallSchedule(t)
	events := FromSchedule(s)
	peak, at := PeakBacklog(events)
	// At t=0: tasks 0 and 1 both in system (both running). Task 2 arrives
	// at 1 when task 1 completes → backlog 2 throughout.
	if peak != 2 {
		t.Fatalf("peak backlog = %d at %v, want 2", peak, at)
	}
	for _, sample := range QueueProfile(events) {
		if sample.Waiting < 0 || sample.Running < 0 {
			t.Fatalf("negative counts: %+v", sample)
		}
	}
}

func TestWriteAndTimeline(t *testing.T) {
	s := smallSchedule(t)
	var b strings.Builder
	Write(&b, FromSchedule(s))
	out := b.String()
	for _, want := range []string{"arrival", "start", "completion", "on M1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace output missing %q:\n%s", want, out)
		}
	}
	b.Reset()
	MachineTimeline(&b, s, 0)
	if !strings.Contains(b.String(), "M1:") || !strings.Contains(b.String(), "task 0") {
		t.Fatalf("timeline output incomplete:\n%s", b.String())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	s := smallSchedule(t)
	events := FromSchedule(s)
	// Drop one event.
	if err := Validate(events[:len(events)-1], s.Inst.N()); err == nil {
		t.Fatalf("missing event accepted")
	}
	// Duplicate an event.
	dup := append(append([]Event(nil), events...), events[0])
	if err := Validate(dup, s.Inst.N()); err == nil {
		t.Fatalf("duplicate event accepted")
	}
}

func TestKindString(t *testing.T) {
	if Arrival.String() != "arrival" || Start.String() != "start" || Completion.String() != "completion" {
		t.Fatalf("kind names wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatalf("unknown kind name wrong")
	}
}

// TestTracePropertyOnRandomSchedules: every EFT schedule yields a valid
// trace whose peak backlog is at least the largest per-machine queue.
func TestTracePropertyOnRandomSchedules(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(5)
		n := 1 + rng.Intn(60)
		tasks := make([]core.Task, n)
		tm := 0.0
		for i := range tasks {
			tm += rng.ExpFloat64() / float64(m)
			tasks[i] = core.Task{Release: tm, Proc: 0.2 + rng.Float64()*2}
		}
		inst := core.NewInstance(m, tasks)
		s, err := sched.NewEFT(sched.MinTie{}).Run(inst)
		if err != nil {
			return false
		}
		events := FromSchedule(s)
		if Validate(events, n) != nil {
			return false
		}
		peak, _ := PeakBacklog(events)
		return peak >= 1 && peak <= n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// --- Observability-PR edge cases ------------------------------------------

// TestQueueProfileEmpty: nil and empty event slices yield an empty profile
// and a zero peak, not a panic.
func TestQueueProfileEmpty(t *testing.T) {
	for _, events := range [][]Event{nil, {}} {
		if got := QueueProfile(events); len(got) != 0 {
			t.Errorf("QueueProfile(%v) = %v, want empty", events, got)
		}
		peak, at := PeakBacklog(events)
		if peak != 0 || at != 0 {
			t.Errorf("PeakBacklog(%v) = %d@%v, want 0@0", events, peak, at)
		}
	}
}

// TestPeakBacklogEqualInstantTie: a completion and an arrival at the same
// instant must not double-count — the completion is applied first (the
// simulator's completion-before-arrival ordering), so a back-to-back
// handoff keeps the backlog at 1.
func TestPeakBacklogEqualInstantTie(t *testing.T) {
	events := []Event{
		{Time: 0, Kind: Arrival, Task: 0, Machine: -1},
		{Time: 0, Kind: Start, Task: 0, Machine: 0},
		{Time: 1, Kind: Completion, Task: 0, Machine: 0},
		{Time: 1, Kind: Arrival, Task: 1, Machine: -1},
		{Time: 1, Kind: Start, Task: 1, Machine: 0},
		{Time: 2, Kind: Completion, Task: 1, Machine: 0},
	}
	peak, _ := PeakBacklog(events)
	if peak != 1 {
		t.Fatalf("peak = %d, want 1: the t=1 handoff double-counted", peak)
	}
	// The same events deliberately mis-ordered (arrival before the equal-
	// instant completion) would read 2 — FromSchedule's ordering is what
	// keeps the profile exact.
	swapped := append([]Event(nil), events...)
	swapped[2], swapped[3] = swapped[3], swapped[2]
	if peak, _ := PeakBacklog(swapped); peak != 2 {
		t.Fatalf("mis-ordered peak = %d, want 2 (ordering sensitivity lost)", peak)
	}
}
