// Package trace reconstructs event traces from schedules for debugging and
// observability: per-task arrival/start/completion events in time order,
// per-machine timelines, and queueing diagnostics (waiting counts over
// time). Traces are derived from the schedule itself, so they apply to any
// scheduler's output, not only the simulator's.
package trace

import (
	"fmt"
	"io"
	"sort"

	"flowsched/internal/core"
)

// Kind labels a trace event.
type Kind int

// Event kinds, in tie-break order at equal instants: completions first,
// then arrivals, then starts (a freed machine can start the next task at
// the same instant).
const (
	Completion Kind = iota
	Arrival
	Start
)

func (k Kind) String() string {
	switch k {
	case Arrival:
		return "arrival"
	case Start:
		return "start"
	case Completion:
		return "completion"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one trace record. Machine is -1 for arrivals (the task has not
// been placed yet from the trace's point of view).
type Event struct {
	Time    core.Time
	Kind    Kind
	Task    int
	Machine int
}

// FromSchedule derives the event trace of a schedule: an arrival at each
// release, a start and a completion per task, sorted by time (kind, then
// task ID break ties).
func FromSchedule(s *core.Schedule) []Event {
	var events []Event
	for i, t := range s.Inst.Tasks {
		events = append(events,
			Event{Time: t.Release, Kind: Arrival, Task: i, Machine: -1},
			Event{Time: s.Start[i], Kind: Start, Task: i, Machine: s.Machine[i]},
			Event{Time: s.Completion(i), Kind: Completion, Task: i, Machine: s.Machine[i]},
		)
	}
	sort.SliceStable(events, func(a, b int) bool {
		if events[a].Time != events[b].Time {
			return events[a].Time < events[b].Time
		}
		if events[a].Kind != events[b].Kind {
			return events[a].Kind < events[b].Kind
		}
		return events[a].Task < events[b].Task
	})
	return events
}

// Write renders the trace as one line per event.
func Write(w io.Writer, events []Event) {
	for _, e := range events {
		switch e.Kind {
		case Arrival:
			fmt.Fprintf(w, "%10.4f  arrival     task %d\n", e.Time, e.Task)
		case Start:
			fmt.Fprintf(w, "%10.4f  start       task %-4d on M%d\n", e.Time, e.Task, e.Machine+1)
		case Completion:
			fmt.Fprintf(w, "%10.4f  completion  task %-4d on M%d\n", e.Time, e.Task, e.Machine+1)
		}
	}
}

// QueueSample is the number of released-but-unfinished tasks at an event
// instant (sampled immediately after the event).
type QueueSample struct {
	Time    core.Time
	Waiting int // released, not started
	Running int // started, not completed
}

// QueueProfile walks the trace and reports the waiting/running counts after
// every event — the system's backlog trajectory.
func QueueProfile(events []Event) []QueueSample {
	var out []QueueSample
	waiting, running := 0, 0
	for _, e := range events {
		switch e.Kind {
		case Arrival:
			waiting++
		case Start:
			waiting--
			running++
		case Completion:
			running--
		}
		out = append(out, QueueSample{Time: e.Time, Waiting: waiting, Running: running})
	}
	return out
}

// PeakBacklog returns the maximum number of released-but-unfinished tasks
// over the run and the time it occurs.
func PeakBacklog(events []Event) (int, core.Time) {
	peak, at := 0, core.Time(0)
	for _, s := range QueueProfile(events) {
		if b := s.Waiting + s.Running; b > peak {
			peak, at = b, s.Time
		}
	}
	return peak, at
}

// MachineTimeline renders machine j's busy periods as "[start end) task"
// lines.
func MachineTimeline(w io.Writer, s *core.Schedule, j int) {
	ids := s.MachineTasks()[j]
	fmt.Fprintf(w, "M%d:\n", j+1)
	for _, i := range ids {
		fmt.Fprintf(w, "  [%.4f, %.4f)  task %d (released %.4f, flow %.4f)\n",
			s.Start[i], s.Completion(i), i, s.Inst.Tasks[i].Release, s.Flow(i))
	}
}

// Validate checks the internal consistency of a trace: counts never go
// negative, every task has exactly one event of each kind, and per task the
// order is arrival ≤ start ≤ completion.
func Validate(events []Event, n int) error {
	seen := make(map[int][3]bool, n)
	when := make(map[int][3]core.Time, n)
	for _, e := range events {
		k := int(e.Kind)
		s := seen[e.Task]
		if s[k] {
			return fmt.Errorf("trace: duplicate %v for task %d", e.Kind, e.Task)
		}
		s[k] = true
		seen[e.Task] = s
		w := when[e.Task]
		w[k] = e.Time
		when[e.Task] = w
	}
	if len(seen) != n {
		return fmt.Errorf("trace: %d tasks traced, want %d", len(seen), n)
	}
	for task, s := range seen {
		if !s[0] || !s[1] || !s[2] {
			return fmt.Errorf("trace: task %d missing events", task)
		}
		w := when[task]
		if !(w[int(Arrival)] <= w[int(Start)] && w[int(Start)] <= w[int(Completion)]) {
			return fmt.Errorf("trace: task %d events out of order", task)
		}
	}
	for _, s := range QueueProfile(events) {
		if s.Waiting < 0 || s.Running < 0 {
			return fmt.Errorf("trace: negative counts at %v", s.Time)
		}
	}
	return nil
}
