package overload

import (
	"math"
	"strings"
	"testing"

	"flowsched/internal/core"
	"flowsched/internal/replicate"
)

func testView(m int) *View {
	return &View{
		M:          m,
		Completion: make([]core.Time, m),
		QueueLen:   make([]int, m),
	}
}

func TestViewBacklogAndUsable(t *testing.T) {
	v := testView(3)
	v.Now = 10
	v.Completion = []core.Time{8, 10, 14}
	if got := v.Backlog(0); got != 0 {
		t.Errorf("idle server backlog %v", got)
	}
	if got := v.Backlog(2); got != 4 {
		t.Errorf("backlog %v, want 4", got)
	}
	if !v.Usable(0) {
		t.Error("server with nil live/ejected vectors must be usable")
	}
	v.Live = []bool{false, true, true}
	v.Ejected = []bool{false, true, false}
	if v.Usable(0) || v.Usable(1) || !v.Usable(2) {
		t.Errorf("usable flags wrong: %v %v %v", v.Usable(0), v.Usable(1), v.Usable(2))
	}
	// eachUsable over a nil set walks all usable machines; over an explicit
	// set only its usable members.
	var seen []int
	if !v.eachUsable(nil, func(j int) { seen = append(seen, j) }) || len(seen) != 1 || seen[0] != 2 {
		t.Errorf("eachUsable(nil) visited %v", seen)
	}
	if v.eachUsable(core.NewProcSet(0, 1), func(int) {}) {
		t.Error("eachUsable over a fully unusable set reported usable machines")
	}
}

func TestQueueBoundAdmit(t *testing.T) {
	v := testView(2)
	v.QueueLen = []int{5, 1}
	q := QueueBound{MaxQueue: 3}
	if ok, _ := q.Admit(v, core.Task{}); !ok {
		t.Error("rejected although server 1 is under the bound")
	}
	if ok, reason := q.Admit(v, core.Task{Set: core.NewProcSet(0)}); ok || reason != ReasonQueueBound {
		t.Errorf("admit=%v reason=%q for a set whose only server is over the bound", ok, reason)
	}
	// Backlog bound: machine counts as overloaded only when past every
	// configured bound.
	v.Now = 0
	v.Completion = []core.Time{10, 0.5}
	qb := QueueBound{MaxQueue: 3, MaxBacklog: 2}
	if ok, _ := qb.Admit(v, core.Task{Set: core.NewProcSet(0)}); ok {
		t.Error("server over both bounds admitted")
	}
	if ok, _ := qb.Admit(v, core.Task{Set: core.NewProcSet(1)}); !ok {
		t.Error("server under the backlog bound rejected")
	}
	// Whole set down: admission defers to parking/failover.
	v.Live = []bool{false, false}
	if ok, _ := qb.Admit(v, core.Task{Set: core.NewProcSet(0, 1)}); !ok {
		t.Error("whole-set-down task must be admitted (parking decides)")
	}
}

func TestDeadlineAdmit(t *testing.T) {
	v := testView(2)
	v.Now = 5
	v.Completion = []core.Time{9, 20}
	d := DeadlineAdmit{D: 6}
	// Earliest finish: server 0 at max(9,5)+2 = 11 → flow 6 ≤ D.
	if ok, _ := d.Admit(v, core.Task{Release: 5, Proc: 2}); !ok {
		t.Error("task finishing exactly at the deadline rejected")
	}
	// Proc 3 → finish 12 → flow 7 > 6.
	if ok, reason := d.Admit(v, core.Task{Release: 5, Proc: 3}); ok || reason != ReasonDeadline {
		t.Errorf("admit=%v reason=%q for a task that cannot meet the deadline", ok, reason)
	}
	// Restricting the set to the backlogged server blows the budget.
	if ok, _ := d.Admit(v, core.Task{Release: 5, Proc: 2, Set: core.NewProcSet(1)}); ok {
		t.Error("task bound to the backlogged server admitted")
	}
	if d.Budget() != 6 {
		t.Errorf("budget %v", d.Budget())
	}
}

func TestShedPolicyNames(t *testing.T) {
	for _, p := range []ShedPolicy{DropNewest, DropOldest, DropRandom, DropLargestStretch} {
		got, err := ShedPolicyByName(p.String())
		if err != nil || got != p {
			t.Errorf("round-trip %v: got %v, err %v", p, got, err)
		}
		if !strings.HasPrefix(p.Reason(), "shed-") {
			t.Errorf("reason %q lacks the shed- prefix", p.Reason())
		}
	}
	if _, err := ShedPolicyByName("bogus"); err == nil {
		t.Error("bogus policy name parsed")
	}
}

func TestShedderRank(t *testing.T) {
	mk := func() []Candidate {
		return []Candidate{
			{ID: 0, Release: 0, Proc: 1, Pos: 0},  // oldest, stretch 10
			{ID: 1, Release: 4, Proc: 12, Pos: 1}, // stretch 0.5
			{ID: 2, Release: 8, Proc: 1, Pos: 2},  // newest, stretch 2
		}
	}
	now := core.Time(10)

	s := &Shedder{Policy: DropNewest, Watermark: 1}
	cands := mk()
	s.Rank(now, cands)
	if cands[0].ID != 2 || cands[2].ID != 0 {
		t.Errorf("newest-first order %v", ids(cands))
	}

	s = &Shedder{Policy: DropOldest, Watermark: 1}
	cands = mk()
	s.Rank(now, cands)
	if cands[0].ID != 0 || cands[2].ID != 2 {
		t.Errorf("oldest-first order %v", ids(cands))
	}

	s = &Shedder{Policy: DropLargestStretch, Watermark: 1}
	cands = mk()
	s.Rank(now, cands)
	if cands[0].ID != 0 || cands[1].ID != 2 || cands[2].ID != 1 {
		t.Errorf("largest-stretch order %v", ids(cands))
	}

	// DropRandom is deterministic per seed.
	a, b := mk(), mk()
	sa := &Shedder{Policy: DropRandom, Watermark: 1, Seed: 9}
	sb := &Shedder{Policy: DropRandom, Watermark: 1, Seed: 9}
	sa.reset()
	sb.reset()
	sa.Rank(now, a)
	sb.Rank(now, b)
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("same-seed shuffles diverge: %v vs %v", ids(a), ids(b))
		}
	}
}

func ids(cands []Candidate) []int {
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.ID
	}
	return out
}

func TestShedderDefaults(t *testing.T) {
	s := &Shedder{Watermark: 4}
	if s.EffectiveTarget() != 4 {
		t.Errorf("default target %v, want the watermark", s.EffectiveTarget())
	}
	s.Target = 2
	if s.EffectiveTarget() != 2 {
		t.Errorf("explicit target %v", s.EffectiveTarget())
	}
	var nilShedder *Shedder
	if nilShedder.Enabled() {
		t.Error("nil shedder enabled")
	}
	if (&Shedder{}).Enabled() {
		t.Error("watermark-less shedder enabled")
	}
}

func TestEjectorLifecycle(t *testing.T) {
	e := &Ejector{K: 2, Cooldown: 5, MinSamples: 3}
	e.reset(4)
	// Healthy completions everywhere, inflated ones on server 3.
	now := core.Time(0)
	ejectedAt := core.Time(-1)
	for i := 0; i < 6; i++ {
		now += 1
		for j := 0; j < 3; j++ {
			if e.Observe(j, 1.0, now) {
				t.Fatalf("healthy server %d ejected", j)
			}
		}
		if e.Observe(3, 8.0, now) && ejectedAt < 0 {
			ejectedAt = now
		}
	}
	if ejectedAt < 0 {
		t.Fatal("an 8×-inflated server was never ejected")
	}
	if e.NumEjected() != 1 || e.Ejections() != 1 || !e.EjectedVec()[3] {
		t.Fatalf("state after ejection: num=%d total=%d vec=%v", e.NumEjected(), e.Ejections(), e.EjectedVec())
	}
	// Before the cooldown: still out. After: readmitted with cleared stats.
	e.Readmit(ejectedAt+4, nil)
	if e.NumEjected() != 1 {
		t.Error("readmitted before the cooldown expired")
	}
	var readmitted []int
	e.Readmit(ejectedAt+5, func(j int) { readmitted = append(readmitted, j) })
	if e.NumEjected() != 0 || e.Readmissions() != 1 || len(readmitted) != 1 || readmitted[0] != 3 {
		t.Fatalf("readmission failed: num=%d readmits=%d got %v", e.NumEjected(), e.Readmissions(), readmitted)
	}
	if e.samples[3] != 0 || e.ewma[3] != 0 {
		t.Error("readmission must clear the server's statistics")
	}
}

func TestEjectorMaxFraction(t *testing.T) {
	e := &Ejector{K: 2, MinSamples: 1, MaxFraction: 0.5}
	e.reset(4)
	now := core.Time(1)
	for j := 0; j < 4; j++ {
		e.Observe(j, 1.0, now)
	}
	// Inflate three servers: only two (half the cluster) may go out.
	for i := 0; i < 5; i++ {
		now += 1
		for j := 1; j < 4; j++ {
			e.Observe(j, 20.0, now)
		}
	}
	if e.NumEjected() > 2 {
		t.Errorf("%d of 4 servers ejected despite MaxFraction 0.5", e.NumEjected())
	}
}

func TestEstimatorBrownout(t *testing.T) {
	e := NewEstimatorCapacity(10) // λ* = 10 tasks/unit, brownout above 9
	e.reset()
	now := core.Time(0)
	for i := 0; i < 40; i++ {
		now += 0.2 // λ = 5: healthy
		e.Observe(now, -1)
	}
	if e.Brownout() {
		t.Fatalf("brownout at λ=%v under capacity 10", e.OfferedLoad())
	}
	if u := e.Utilization(); math.Abs(u-0.5) > 0.05 {
		t.Errorf("utilization %v, want ≈0.5", u)
	}
	for i := 0; i < 200; i++ {
		now += 0.05 // λ = 20: overload
		e.Observe(now, -1)
	}
	if !e.Brownout() {
		t.Fatalf("no brownout at λ=%v over capacity 10", e.OfferedLoad())
	}
}

func TestNewEstimatorFromLP(t *testing.T) {
	weights := []float64{0.25, 0.25, 0.25, 0.25}
	e, err := NewEstimator(weights, replicate.Overlapping{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Uniform weights with replication: the LP sustains the full cluster.
	if math.Abs(e.Capacity-4) > 1e-6 {
		t.Errorf("capacity %v, want 4", e.Capacity)
	}
	e.reset()
	now := core.Time(0)
	for i := 0; i < 100; i++ {
		now += 0.1
		e.Observe(now, i%4)
	}
	set, load := e.HottestSet()
	if set == nil || load <= 0 {
		t.Errorf("HottestSet = (%v, %v) after per-set arrivals", set, load)
	}

	if _, err := NewEstimator(nil, nil); err == nil {
		t.Error("empty weight vector accepted")
	}
	if _, err := NewEstimator(weights, replicate.Overlapping{K: 9}); err == nil {
		t.Error("k=9 on m=4 accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	var nilCfg *Config
	if err := nilCfg.Validate(4); err != nil {
		t.Errorf("nil config: %v", err)
	}
	nilCfg.Reset(4) // must not panic

	good := &Config{
		Admission: DeadlineAdmit{D: 5},
		Shedder:   &Shedder{Policy: DropOldest, Watermark: 3},
		Ejector:   &Ejector{},
		Guard:     NewEstimatorCapacity(8),
	}
	if err := good.Validate(4); err != nil {
		t.Errorf("good config rejected: %v", err)
	}

	bad := []*Config{
		{Admission: DeadlineAdmit{}},                                  // zero budget
		{Admission: QueueBound{}},                                     // no bound at all
		{Admission: QueueBound{MaxQueue: -1}},                         // negative bound
		{Shedder: &Shedder{Policy: ShedPolicy(42), Watermark: 1}},     // unknown policy
		{Shedder: &Shedder{Policy: DropOldest, Watermark: -1}},        // negative watermark
		{Ejector: &Ejector{K: 0.9}},                                   // K ≤ 1
		{Ejector: &Ejector{K: 2, MaxFraction: 2}},                     // fraction > 1
		{Guard: NewEstimatorCapacity(-1)},                             // negative capacity
		{Guard: &Estimator{Capacity: 1, Alpha: 7}},                    // alpha outside [0,1]
		{Guard: mustEstimator([]float64{0.5, 0.5}, replicate.None{})}, // m mismatch below
	}
	for i, cfg := range bad {
		m := 4
		if i == len(bad)-1 {
			m = 3 // guard built for 2 machines, run has 3
		}
		if err := cfg.Validate(m); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func mustEstimator(weights []float64, s replicate.Strategy) *Estimator {
	e, err := NewEstimator(weights, s)
	if err != nil {
		panic(err)
	}
	return e
}
