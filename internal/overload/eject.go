package overload

import (
	"fmt"
	"sort"

	"flowsched/internal/core"
)

// Ejector is passive outlier detection in the style of Envoy's outlier
// ejection: every final completion on server j updates an EWMA of that
// server's service-time inflation (observed service time / processing time —
// exactly the Factor of an active faults.Slowdown segment), and a server
// whose EWMA exceeds K × the cluster median is temporarily ejected from
// processing sets. Ejection is advisory routing pressure, not an outage: if
// every live machine of a task's set is ejected, the router sees the live
// set unfiltered, so ejection alone can never park or reject work. After
// Cooldown the server is re-admitted with fresh statistics.
type Ejector struct {
	// K is the ejection threshold multiplier over the cluster-median EWMA
	// (default 3).
	K float64
	// Alpha is the EWMA weight of each new observation (default 0.3).
	Alpha float64
	// Cooldown is how long an ejected server stays out (default 10 time
	// units).
	Cooldown core.Time
	// MinSamples is the number of completions a server must have produced
	// before it can be ejected (default 10).
	MinSamples int
	// MaxFraction caps the ejected share of the cluster (default 0.5);
	// ejections beyond the cap are skipped, mirroring Envoy's
	// max_ejection_percent.
	MaxFraction float64

	m          int
	ewma       []float64
	samples    []int
	ejected    []bool
	until      []core.Time
	numEjected int
	scratch    []float64

	ejections int
	readmits  int
}

func (e *Ejector) validate() error {
	if e.K != 0 && e.K <= 1 {
		// The threshold is K× the cluster-median EWMA; K ≤ 1 would brand the
		// median server itself an outlier.
		return fmt.Errorf("overload: ejection factor K=%v must exceed 1 (0 = default %v)", e.K, (&Ejector{}).k())
	}
	if e.K < 0 || e.Alpha < 0 || e.Alpha > 1 || e.Cooldown < 0 || e.MinSamples < 0 {
		return fmt.Errorf("overload: invalid ejector (K=%v alpha=%v cooldown=%v minSamples=%d)",
			e.K, e.Alpha, e.Cooldown, e.MinSamples)
	}
	if e.MaxFraction < 0 || e.MaxFraction > 1 {
		return fmt.Errorf("overload: ejector MaxFraction %v outside [0,1]", e.MaxFraction)
	}
	return nil
}

func (e *Ejector) k() float64 {
	if e.K > 0 {
		return e.K
	}
	return 3
}

func (e *Ejector) alpha() float64 {
	if e.Alpha > 0 {
		return e.Alpha
	}
	return 0.3
}

func (e *Ejector) cooldown() core.Time {
	if e.Cooldown > 0 {
		return e.Cooldown
	}
	return 10
}

func (e *Ejector) minSamples() int {
	if e.MinSamples > 0 {
		return e.MinSamples
	}
	return 10
}

func (e *Ejector) maxFraction() float64 {
	if e.MaxFraction > 0 {
		return e.MaxFraction
	}
	return 0.5
}

func (e *Ejector) reset(m int) {
	e.m = m
	if cap(e.ewma) < m {
		e.ewma = make([]float64, m)
		e.samples = make([]int, m)
		e.ejected = make([]bool, m)
		e.until = make([]core.Time, m)
		e.scratch = make([]float64, 0, m)
	}
	e.ewma = e.ewma[:m]
	e.samples = e.samples[:m]
	e.ejected = e.ejected[:m]
	e.until = e.until[:m]
	for j := 0; j < m; j++ {
		e.ewma[j], e.samples[j], e.ejected[j], e.until[j] = 0, 0, false, 0
	}
	e.scratch = e.scratch[:0]
	e.numEjected, e.ejections, e.readmits = 0, 0, 0
}

// EjectedVec returns the per-server ejected flags (aliased, live).
func (e *Ejector) EjectedVec() []bool { return e.ejected }

// NumEjected returns how many servers are currently ejected.
func (e *Ejector) NumEjected() int { return e.numEjected }

// Ejections returns the total ejections of the run so far.
func (e *Ejector) Ejections() int { return e.ejections }

// Readmissions returns the total cooldown re-admissions of the run so far.
func (e *Ejector) Readmissions() int { return e.readmits }

// median returns the cluster-median EWMA over servers with at least one
// sample (0 when none have samples).
func (e *Ejector) median() float64 {
	xs := e.scratch[:0]
	for j := 0; j < e.m; j++ {
		if e.samples[j] > 0 {
			xs = append(xs, e.ewma[j])
		}
	}
	e.scratch = xs
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	mid := len(xs) / 2
	if len(xs)%2 == 1 {
		return xs[mid]
	}
	return (xs[mid-1] + xs[mid]) / 2
}

// Observe records one final completion on server j with service-time
// inflation factor (service time / processing time, ≥ 1 when healthy) at
// instant now, and reports whether the observation newly ejected j.
func (e *Ejector) Observe(j int, factor float64, now core.Time) bool {
	if e.samples[j] == 0 {
		e.ewma[j] = factor
	} else {
		a := e.alpha()
		e.ewma[j] = a*factor + (1-a)*e.ewma[j]
	}
	e.samples[j]++
	if e.ejected[j] || e.samples[j] < e.minSamples() {
		return false
	}
	med := e.median()
	if med <= 0 || e.ewma[j] <= e.k()*med {
		return false
	}
	if float64(e.numEjected+1) > e.maxFraction()*float64(e.m) {
		return false
	}
	e.ejected[j] = true
	e.until[j] = now + e.cooldown()
	e.numEjected++
	e.ejections++
	return true
}

// Readmit re-admits every ejected server whose cooldown has expired at now,
// calling f (optional) per re-admitted server. Re-admission clears the
// server's statistics so the stale slow-period EWMA cannot re-eject it
// before fresh evidence accumulates.
func (e *Ejector) Readmit(now core.Time, f func(j int)) {
	if e.numEjected == 0 {
		return
	}
	for j := 0; j < e.m; j++ {
		if !e.ejected[j] || now < e.until[j] {
			continue
		}
		e.ejected[j] = false
		e.ewma[j], e.samples[j], e.until[j] = 0, 0, 0
		e.numEjected--
		e.readmits++
		if f != nil {
			f(j)
		}
	}
}
