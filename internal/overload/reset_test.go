package overload

import (
	"reflect"
	"testing"

	"flowsched/internal/core"
)

// The run arena recycles overload controls across runs, so every stateful
// control must come back bit-for-bit fresh from its reset — a half-cleared
// EWMA or a drifted RNG would silently change later runs' outputs.

func rankCands() []Candidate {
	return []Candidate{
		{ID: 0, Release: 1, Proc: 2, Pos: 0},
		{ID: 1, Release: 5, Proc: 1, Pos: 1},
		{ID: 2, Release: 3, Proc: 4, Pos: 2},
		{ID: 3, Release: 8, Proc: 1, Pos: 3},
		{ID: 4, Release: 2, Proc: 3, Pos: 4},
	}
}

func rankOrder(s *Shedder, now core.Time) []int {
	cands := rankCands()
	s.Rank(now, cands)
	ids := make([]int, len(cands))
	for i, c := range cands {
		ids[i] = c.ID
	}
	return ids
}

// TestShedderResetRandomStream: a used-then-reset DropRandom shedder must
// replay exactly the shuffle stream of a fresh one — the reset re-seeds the
// persistent source instead of allocating a new rand.Rand.
func TestShedderResetRandomStream(t *testing.T) {
	fresh := &Shedder{Policy: DropRandom, Watermark: 1, Seed: 42}
	var want [][]int
	for i := 0; i < 3; i++ {
		want = append(want, rankOrder(fresh, 10))
	}

	used := &Shedder{Policy: DropRandom, Watermark: 1, Seed: 42}
	for i := 0; i < 7; i++ { // drift the stream
		rankOrder(used, 10)
	}
	used.reset()
	for i := 0; i < 3; i++ {
		if got := rankOrder(used, 10); !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("shuffle %d after reset = %v, fresh = %v", i, got, want[i])
		}
	}
}

// TestShedderRankNoAlloc pins the trim path's cost: after the first call the
// policy sorts rank candidates with zero allocations (persistent
// sort.Interface value, no closure-per-call sort.Slice).
func TestShedderRankNoAlloc(t *testing.T) {
	for _, pol := range []ShedPolicy{DropOldest, DropNewest, DropLargestStretch} {
		s := &Shedder{Policy: pol, Watermark: 1}
		cands := rankCands()
		s.Rank(20, cands) // warm
		allocs := testing.AllocsPerRun(10, func() {
			s.Rank(20, cands)
		})
		if allocs != 0 {
			t.Fatalf("%v: Rank allocated %.1f times per call; want 0", pol, allocs)
		}
	}
}

// TestShedderRankPolicies sanity-checks the persistent comparator against
// the documented policy orders (first-ranked is dropped first).
func TestShedderRankPolicies(t *testing.T) {
	cases := []struct {
		pol  ShedPolicy
		want []int
	}{
		{DropOldest, []int{0, 1, 2, 3, 4}},         // queue position ascending
		{DropNewest, []int{4, 3, 2, 1, 0}},         // queue position descending
		{DropLargestStretch, []int{1, 0, 4, 3, 2}}, // (now−Release)/Proc descending, ties by position
	}
	for _, tc := range cases {
		s := &Shedder{Policy: tc.pol, Watermark: 1}
		if got := rankOrder(s, 10); !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("%v: order %v, want %v", tc.pol, got, tc.want)
		}
	}
}

// TestEjectorResetBitForBit: an ejector that observed a run and ejected
// servers must be indistinguishable after reset from one that never ran.
func TestEjectorResetBitForBit(t *testing.T) {
	fresh := &Ejector{}
	fresh.reset(5)

	used := &Ejector{}
	used.reset(5)
	for i := 0; i < 60; i++ {
		used.Observe(i%5, 1+float64(i%7), core.Time(i))
	}
	used.Observe(2, 50, 61) // a clear outlier to flip ejected state
	used.Readmit(1e9, func(int) {})
	used.reset(5)

	if !reflect.DeepEqual(fresh, used) {
		t.Fatalf("used+reset ejector differs from fresh:\nfresh %+v\nused  %+v", fresh, used)
	}
}

// TestEstimatorResetBitForBit: the capacity guard's arrival trackers (global
// and per-set EWMAs, brownout latch) must clear completely.
func TestEstimatorResetBitForBit(t *testing.T) {
	fresh := NewEstimatorCapacity(10)
	used := NewEstimatorCapacity(10)
	for i := 0; i < 50; i++ {
		used.Observe(core.Time(i)*0.01, i%3)
	}
	used.Reset()
	if !reflect.DeepEqual(fresh, used) {
		t.Fatalf("used+Reset estimator differs from fresh:\nfresh %+v\nused  %+v", fresh, used)
	}
}
