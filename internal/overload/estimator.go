package overload

import (
	"fmt"

	"flowsched/internal/core"
	"flowsched/internal/loadlp"
	"flowsched/internal/replicate"
)

// Estimator is the SLO guard's capacity side: it tracks the offered load —
// an EWMA over observed inter-arrival times, globally and per replication
// set — and compares it against the cluster capacity λ* from LP (15)
// (loadlp.MaxLoadLP). When the estimated arrival rate exceeds
// Headroom × λ*, the guard raises a brownout signal that admission policies,
// probes and operators can consume; the estimator itself rejects nothing.
type Estimator struct {
	// Capacity is λ*, the maximal sustainable arrival rate. NewEstimator
	// fills it from the LP; it can also be set directly (tasks per time
	// unit).
	Capacity float64
	// Headroom is the brownout threshold as a fraction of Capacity
	// (default 0.9).
	Headroom float64
	// Alpha is the EWMA weight per inter-arrival observation (default 0.05:
	// roughly a 20-arrival window).
	Alpha float64
	// MinSamples is the number of arrivals before the brownout signal can
	// assert (default 20).
	MinSamples int

	sets  []core.ProcSet // deduplicated replication sets; nil when untracked
	setOf []int          // primary machine -> index into sets (−1 untracked)

	last    core.Time
	seen    int
	ia      float64 // EWMA inter-arrival time, all tasks
	setLast []core.Time
	setSeen []int
	setIA   []float64
	brown   bool
}

// NewEstimator builds the guard for a popularity weight vector and a
// replication strategy: capacity comes from loadlp.MaxLoadLP and the
// offered load is additionally tracked per distinct replication set, so
// HottestSet can point at the saturating shard.
func NewEstimator(weights []float64, strategy replicate.Strategy) (*Estimator, error) {
	m := len(weights)
	if m == 0 {
		return nil, fmt.Errorf("overload: estimator needs a non-empty weight vector")
	}
	if strategy == nil {
		strategy = replicate.None{}
	}
	if err := replicate.Validate(strategy, m); err != nil {
		return nil, fmt.Errorf("overload: %w", err)
	}
	model := loadlp.NewModel(weights, strategy)
	capacity, err := model.MaxLoadLP()
	if err != nil {
		return nil, fmt.Errorf("overload: capacity LP: %w", err)
	}
	e := &Estimator{Capacity: capacity}
	e.setOf = make([]int, m)
	for u := 0; u < m; u++ {
		set := model.Sets[u]
		idx := -1
		for x, s := range e.sets {
			if s.Equal(set) {
				idx = x
				break
			}
		}
		if idx < 0 {
			idx = len(e.sets)
			e.sets = append(e.sets, set)
		}
		e.setOf[u] = idx
	}
	e.setLast = make([]core.Time, len(e.sets))
	e.setSeen = make([]int, len(e.sets))
	e.setIA = make([]float64, len(e.sets))
	return e, nil
}

// NewEstimatorCapacity builds a guard with a known capacity and no per-set
// tracking (HottestSet reports nothing).
func NewEstimatorCapacity(capacity float64) *Estimator {
	return &Estimator{Capacity: capacity}
}

func (e *Estimator) validate(m int) error {
	if e.Capacity < 0 {
		return fmt.Errorf("overload: negative estimator capacity %v", e.Capacity)
	}
	if e.Headroom < 0 {
		return fmt.Errorf("overload: negative estimator headroom %v", e.Headroom)
	}
	if e.Alpha < 0 || e.Alpha > 1 {
		return fmt.Errorf("overload: estimator alpha %v outside [0,1]", e.Alpha)
	}
	if e.setOf != nil && len(e.setOf) != m {
		return fmt.Errorf("overload: estimator built for %d machines, run has %d", len(e.setOf), m)
	}
	return nil
}

func (e *Estimator) headroom() float64 {
	if e.Headroom > 0 {
		return e.Headroom
	}
	return 0.9
}

func (e *Estimator) alpha() float64 {
	if e.Alpha > 0 {
		return e.Alpha
	}
	return 0.05
}

func (e *Estimator) minSamples() int {
	if e.MinSamples > 0 {
		return e.MinSamples
	}
	return 20
}

func (e *Estimator) reset() {
	e.last, e.seen, e.ia, e.brown = 0, 0, 0, false
	for i := range e.setIA {
		e.setLast[i], e.setSeen[i], e.setIA[i] = 0, 0, 0
	}
}

// Reset clears the per-run tracking state so the estimator can be reused
// across runs. Config.Reset calls it for a guard attached to an overload
// config; an estimator driving only an elastic autoscaler is reset by the
// simulator directly.
func (e *Estimator) Reset() { e.reset() }

// Observe records one arrival at instant now whose key's primary machine is
// primary (−1 or out of range skips the per-set tracking).
func (e *Estimator) Observe(now core.Time, primary int) {
	if e.seen > 0 {
		gap := float64(now - e.last)
		if e.seen == 1 {
			e.ia = gap
		} else {
			a := e.alpha()
			e.ia = a*gap + (1-a)*e.ia
		}
	}
	e.last = now
	e.seen++
	if e.setOf != nil && primary >= 0 && primary < len(e.setOf) {
		i := e.setOf[primary]
		if e.setSeen[i] > 0 {
			gap := float64(now - e.setLast[i])
			if e.setSeen[i] == 1 {
				e.setIA[i] = gap
			} else {
				a := e.alpha()
				e.setIA[i] = a*gap + (1-a)*e.setIA[i]
			}
		}
		e.setLast[i] = now
		e.setSeen[i]++
	}
	if e.seen >= e.minSamples() && e.Capacity > 0 {
		e.brown = e.OfferedLoad() > e.headroom()*e.Capacity
	}
}

// OfferedLoad returns the estimated arrival rate λ̂ (tasks per time unit),
// 0 before two arrivals.
func (e *Estimator) OfferedLoad() float64 {
	if e.seen < 2 || e.ia <= 0 {
		return 0
	}
	return 1 / e.ia
}

// Utilization returns λ̂ / λ* (0 when capacity is unknown).
func (e *Estimator) Utilization() float64 {
	if e.Capacity <= 0 {
		return 0
	}
	return e.OfferedLoad() / e.Capacity
}

// Brownout reports whether the offered load currently exceeds
// Headroom × Capacity.
func (e *Estimator) Brownout() bool { return e.brown }

// HottestSet returns the replication set with the highest estimated load
// per replica and that load (λ̂_S / |S|). It returns (nil, 0) when per-set
// tracking is off or no set has seen two arrivals.
func (e *Estimator) HottestSet() (core.ProcSet, float64) {
	var best core.ProcSet
	bestLoad := 0.0
	for i, s := range e.sets {
		if e.setSeen[i] < 2 || e.setIA[i] <= 0 || len(s) == 0 {
			continue
		}
		load := 1 / e.setIA[i] / float64(len(s))
		if load > bestLoad {
			best, bestLoad = s, load
		}
	}
	return best, bestLoad
}
