package overload

import (
	"fmt"
	"math/rand"
	"sort"

	"flowsched/internal/core"
)

// ShedPolicy selects which queued tasks a watermark-triggered trim drops.
type ShedPolicy int

// Shedding victim orders.
const (
	// DropNewest sheds from the back of the queue (LIFO drop): the freshest
	// work is sacrificed so old work keeps its place.
	DropNewest ShedPolicy = iota
	// DropOldest sheds from the front (behind the running task): work that
	// already waited past the watermark is abandoned — the "stale results
	// are worthless" policy.
	DropOldest
	// DropRandom sheds a uniformly random subset (seeded, deterministic per
	// run).
	DropRandom
	// DropLargestStretch sheds the tasks whose current stretch
	// (age / processing time) is largest — it gives up on the requests whose
	// SLO is already the most blown per unit of work.
	DropLargestStretch
)

var shedNames = map[ShedPolicy]string{
	DropNewest:         "newest",
	DropOldest:         "oldest",
	DropRandom:         "random",
	DropLargestStretch: "stretch",
}

func (p ShedPolicy) String() string {
	if s, ok := shedNames[p]; ok {
		return s
	}
	return fmt.Sprintf("ShedPolicy(%d)", int(p))
}

// ShedPolicyByName parses a policy name (newest | oldest | random | stretch).
func ShedPolicyByName(name string) (ShedPolicy, error) {
	for p, s := range shedNames {
		if s == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("overload: unknown shed policy %q (want newest|oldest|random|stretch)", name)
}

// Reason returns the reason string recorded for tasks shed under the policy.
func (p ShedPolicy) Reason() string { return "shed-" + p.String() }

// Candidate is one queued-but-not-started task eligible for shedding.
type Candidate struct {
	ID      int
	Release core.Time
	Proc    core.Time
	Pos     int // position in the server's FIFO (0 = oldest unstarted)
}

// Shedder trims standing queues mid-run. At every arrival the simulator
// checks each machine's oldest queued task; when its age (now − release)
// exceeds Watermark, queued tasks on that machine are shed in Policy order
// until the machine's backlog is at most Target. The running task is never
// shed (execution is non-preemptive).
type Shedder struct {
	Policy    ShedPolicy
	Watermark core.Time // age trigger; ≤ 0 disables the shedder
	// Target is the backlog to drain down to once triggered; 0 means
	// Watermark (trim until the newly-arriving work would wait at most the
	// watermark again).
	Target core.Time
	// Seed drives DropRandom's shuffle; the zero seed is valid and
	// deterministic like any other.
	Seed int64

	rng   *rand.Rand
	src   rand.Source
	order candOrder
}

func (s *Shedder) validate() error {
	if s.Watermark < 0 {
		return fmt.Errorf("overload: negative shed watermark %v", s.Watermark)
	}
	if s.Target < 0 {
		return fmt.Errorf("overload: negative shed target %v", s.Target)
	}
	if _, ok := shedNames[s.Policy]; !ok {
		return fmt.Errorf("overload: unknown shed policy %d", int(s.Policy))
	}
	return nil
}

func (s *Shedder) reset() {
	if s.rng == nil {
		s.src = rand.NewSource(s.Seed)
		s.rng = rand.New(s.src)
		return
	}
	// Reseeding the existing source reproduces the stream bit-for-bit without
	// the two allocations of rand.New(rand.NewSource(...)) — rand.Rand pulls
	// Shuffle's values straight from the source, so a reseeded source is
	// indistinguishable from a fresh generator.
	s.src.Seed(s.Seed)
}

// EffectiveTarget returns the backlog level a trim drains to.
func (s *Shedder) EffectiveTarget() core.Time {
	if s.Target > 0 {
		return s.Target
	}
	return s.Watermark
}

// Enabled reports whether the shedder can ever trigger.
func (s *Shedder) Enabled() bool { return s != nil && s.Watermark > 0 }

// Rank reorders cands into shedding priority order (first = shed first).
// The order is deterministic for a fixed Seed.
//
// Sorting goes through the persistent candOrder sort.Interface rather than
// sort.SliceStable: converting a pointer-to-field to an interface does not
// allocate, while SliceStable's closure + reflect-based swapper costs ~3
// allocations per call — per trim, on the guarded hot path. sort.Stable
// produces the same stable permutation for the same Less.
func (s *Shedder) Rank(now core.Time, cands []Candidate) {
	if s.Policy == DropRandom {
		if s.rng == nil {
			s.reset()
		}
		s.rng.Shuffle(len(cands), func(a, b int) { cands[a], cands[b] = cands[b], cands[a] })
		return
	}
	s.order.policy = s.Policy
	s.order.now = now
	s.order.cands = cands
	sort.Stable(&s.order)
	s.order.cands = nil // don't retain the caller's slice
}

// candOrder adapts a candidate slice to sort.Interface under one of the
// deterministic shed policies (DropRandom shuffles instead of sorting).
type candOrder struct {
	policy ShedPolicy
	now    core.Time
	cands  []Candidate
}

func (o *candOrder) Len() int      { return len(o.cands) }
func (o *candOrder) Swap(a, b int) { o.cands[a], o.cands[b] = o.cands[b], o.cands[a] }

func (o *candOrder) Less(a, b int) bool {
	switch o.policy {
	case DropNewest:
		return o.cands[a].Pos > o.cands[b].Pos
	case DropLargestStretch:
		sa, sb := o.stretch(o.cands[a]), o.stretch(o.cands[b])
		if sa != sb {
			return sa > sb
		}
		return o.cands[a].Pos < o.cands[b].Pos
	default: // DropOldest
		return o.cands[a].Pos < o.cands[b].Pos
	}
}

// stretch is the task's current age divided by its processing time (plain age
// when the processing time is not positive).
func (o *candOrder) stretch(c Candidate) float64 {
	age := float64(o.now - c.Release)
	if c.Proc > 0 {
		return age / float64(c.Proc)
	}
	return age
}
