package overload

import (
	"fmt"

	"flowsched/internal/core"
)

// Reason strings attached to rejected and shed tasks. OverloadMetrics
// aggregates by these, and the obs counters export them.
const (
	ReasonQueueBound = "queue-bound"
	ReasonDeadline   = "deadline"
)

// AdmissionPolicy decides, once per task at its arrival instant, whether the
// task enters the system at all. Rejected tasks are never dispatched: they
// carry no flow time and are excluded from Fmax (the goodput metrics report
// them separately).
//
// Admit runs on the simulator's hot path; implementations must not allocate
// or retain the view.
type AdmissionPolicy interface {
	Name() string
	// Admit returns ok=true to accept the task. On rejection, reason names
	// the rule that fired (one of the Reason constants for the built-ins).
	Admit(v *View, task core.Task) (ok bool, reason string)
}

// Budgeted is implemented by admission policies that promise a flow-time
// budget for admitted tasks. sim.RunGuarded enforces it: any dispatch that
// would complete later than release + Budget() + proc is shed instead, so
// completed-task flow ≤ Budget() + p_max becomes a hard invariant
// (internal/audit's "deadline" check).
type Budgeted interface {
	Budget() core.Time
}

// AdmitAll accepts everything — the baseline that lets flow times grow
// without bound past λ*.
type AdmitAll struct{}

// Name implements AdmissionPolicy.
func (AdmitAll) Name() string { return "admit-all" }

// Admit implements AdmissionPolicy.
func (AdmitAll) Admit(*View, core.Task) (bool, string) { return true, "" }

// QueueBound rejects a task when every usable machine of its processing set
// is past its bound: queue length above MaxQueue (when set) or backlog —
// pending work ahead of the task — above MaxBacklog (when set). A machine
// must exceed every configured bound to count as overloaded; the task is
// rejected only when no usable eligible machine is below the bounds.
//
// With all eligible machines down the task is admitted: parking and failover
// (sim.RunFaulty semantics) own that case, not admission.
type QueueBound struct {
	MaxQueue   int       // reject threshold on per-server queue length; 0 = off
	MaxBacklog core.Time // reject threshold on per-server backlog; 0 = off
}

// Name implements AdmissionPolicy.
func (q QueueBound) Name() string {
	return fmt.Sprintf("queue-bound(len=%d,backlog=%v)", q.MaxQueue, q.MaxBacklog)
}

// validate rejects a bound-less QueueBound (a policy that can never fire is
// a configuration mistake, not a baseline) and negative thresholds.
func (q QueueBound) validate() error {
	if q.MaxQueue < 0 || q.MaxBacklog < 0 {
		return fmt.Errorf("overload: negative queue bound (len=%d, backlog=%v)", q.MaxQueue, q.MaxBacklog)
	}
	if q.MaxQueue == 0 && q.MaxBacklog == 0 {
		return fmt.Errorf("overload: queue-bound admission with no bound set (use AdmitAll for a no-op policy)")
	}
	return nil
}

// Admit implements AdmissionPolicy.
func (q QueueBound) Admit(v *View, task core.Task) (bool, string) {
	if q.MaxQueue <= 0 && q.MaxBacklog <= 0 {
		return true, ""
	}
	overloaded := true
	any := v.eachUsable(task.Set, func(j int) {
		if !overloaded {
			return
		}
		if q.MaxQueue > 0 && v.QueueLen[j] <= q.MaxQueue {
			overloaded = false
			return
		}
		if q.MaxBacklog > 0 && v.Backlog(j) <= q.MaxBacklog {
			overloaded = false
		}
	})
	if !any {
		return true, "" // whole set down: failover/parking decides, not admission
	}
	if overloaded {
		return false, ReasonQueueBound
	}
	return true, ""
}

// DeadlineAdmit rejects a task when its predicted flow time — the earliest
// finish over the usable machines of M_i, minus its release — exceeds the
// budget D. Because it also implements Budgeted, sim.RunGuarded enforces the
// prediction: admitted tasks that would still blow the budget at an actual
// dispatch (failover delays, gray slowdowns) are shed, so every completed
// task satisfies Fmax ≤ D + p_max.
type DeadlineAdmit struct {
	D core.Time
}

// Name implements AdmissionPolicy.
func (d DeadlineAdmit) Name() string { return fmt.Sprintf("deadline(D=%v)", d.D) }

// Budget implements Budgeted.
func (d DeadlineAdmit) Budget() core.Time { return d.D }

// Admit implements AdmissionPolicy.
func (d DeadlineAdmit) Admit(v *View, task core.Task) (bool, string) {
	best := core.Time(0)
	first := true
	any := v.eachUsable(task.Set, func(j int) {
		start := v.Completion[j]
		if v.Now > start {
			start = v.Now
		}
		if end := start + task.Proc; first || end < best {
			best = end
			first = false
		}
	})
	if !any {
		return true, "" // whole set down: parking decides
	}
	if best-v.Now > d.D {
		return false, ReasonDeadline
	}
	return true, ""
}
