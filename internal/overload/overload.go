// Package overload is the overload-control subsystem of the cluster
// simulator: graceful degradation once the offered load approaches or
// exceeds the capacity λ* of LP (15).
//
// The paper's objective — bounding the maximum flow time Fmax — is a latency
// SLO, and its max-load LP (Section 7.2) pins the arrival rate λ* at which a
// replicated cluster saturates. Past λ* every work-conserving policy sees
// queues, and therefore flow times, grow without bound; Bansal–Kulkarni
// (arXiv:1401.7284) shows this is unavoidable unless work is rejected or
// reordered. This package provides the principled remedies a production
// serving system layers on top of the router:
//
//   - AdmissionPolicy: consulted once per task at arrival (AdmitAll,
//     QueueBound, DeadlineAdmit). DeadlineAdmit turns the SLO into an
//     enforced invariant: every task that completes has flow ≤ D + p_max
//     (checked by internal/audit's deadline invariant).
//   - Shedder: mid-run queue trimming (drop-newest / drop-oldest / random /
//     largest-stretch-first) triggered by a watermark on the age of the
//     oldest queued task of any machine.
//   - Ejector: Envoy-style passive outlier detection — an EWMA of observed
//     service-time inflation per server ejects gray-slowed replicas from
//     processing sets, with cooldown re-admission.
//   - Estimator: the SLO guard — EWMA offered-load tracking per replication
//     set, compared against loadlp.MaxLoadLP()-derived capacity, exposing a
//     brownout signal.
//
// The simulator side lives in sim.RunGuarded: a nil *Config reproduces
// sim.RunFaulty bit for bit (property-tested), so the subsystem costs
// nothing when disabled. This package deliberately does not import
// internal/sim; the simulator imports it and feeds it a View of the live
// cluster state.
package overload

import (
	"fmt"

	"flowsched/internal/core"
)

// View is the read-only cluster snapshot handed to admission policies. Its
// slices alias the simulator's live state — policies must not retain or
// mutate them.
type View struct {
	Now        core.Time
	M          int
	Completion []core.Time // earliest instant each server runs dry
	QueueLen   []int       // queued-or-running requests per server
	Live       []bool      // nil when the run has no crash faults
	Ejected    []bool      // nil when no Ejector is configured
}

// Backlog returns how far server j's completion horizon extends past now
// (0 for an idle server).
func (v *View) Backlog(j int) core.Time {
	if b := v.Completion[j] - v.Now; b > 0 {
		return b
	}
	return 0
}

// Usable reports whether server j is live and not ejected.
func (v *View) Usable(j int) bool {
	if v.Live != nil && !v.Live[j] {
		return false
	}
	if v.Ejected != nil && v.Ejected[j] {
		return false
	}
	return true
}

// eachUsable calls f for every usable server of the task's processing set
// (every usable server when the set is nil) and reports whether any was
// usable.
func (v *View) eachUsable(set core.ProcSet, f func(j int)) bool {
	any := false
	if set == nil {
		for j := 0; j < v.M; j++ {
			if v.Usable(j) {
				any = true
				f(j)
			}
		}
		return any
	}
	for _, j := range set {
		if v.Usable(j) {
			any = true
			f(j)
		}
	}
	return any
}

// Config bundles the overload controls of one guarded run. Any field may be
// nil (that control is off); a nil *Config disables the subsystem entirely
// and sim.RunGuarded degenerates to sim.RunFaulty, bit for bit.
//
// A Config carries per-run mutable state (the shedder's RNG, the ejector's
// EWMAs, the estimator's load tracking); the simulator resets it at the
// start of every run, so a Config may be reused across sequential runs but
// not shared by concurrent ones.
type Config struct {
	// Admission is consulted once per arriving task; nil admits everything.
	Admission AdmissionPolicy
	// Shedder trims standing queues when the oldest queued task of a machine
	// grows older than its watermark; nil never sheds.
	Shedder *Shedder
	// Ejector temporarily removes gray-slowed servers from processing sets;
	// nil never ejects.
	Ejector *Ejector
	// Guard is the SLO guard: offered load vs LP-capacity tracking with a
	// brownout signal. Advisory — it rejects nothing by itself.
	Guard *Estimator
}

// Validate checks the configuration against a cluster of m machines.
func (c *Config) Validate(m int) error {
	if c == nil {
		return nil
	}
	if c.Shedder != nil {
		if err := c.Shedder.validate(); err != nil {
			return err
		}
	}
	if c.Ejector != nil {
		if err := c.Ejector.validate(); err != nil {
			return err
		}
	}
	if c.Guard != nil {
		if err := c.Guard.validate(m); err != nil {
			return err
		}
	}
	if b, ok := c.Admission.(Budgeted); ok && b.Budget() <= 0 {
		return fmt.Errorf("overload: admission budget must be positive, got %v", b.Budget())
	}
	if v, ok := c.Admission.(interface{ validate() error }); ok {
		if err := v.validate(); err != nil {
			return err
		}
	}
	return nil
}

// Reset clears the per-run mutable state for a cluster of m machines. The
// simulator calls it once at the start of every guarded run (mirroring
// sim.Resettable routers).
func (c *Config) Reset(m int) {
	if c == nil {
		return
	}
	if c.Shedder != nil {
		c.Shedder.reset()
	}
	if c.Ejector != nil {
		c.Ejector.reset(m)
	}
	if c.Guard != nil {
		c.Guard.reset()
	}
}
