package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleMaximize(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → x=2, y=6, obj=36.
	p := NewProblem(2, true)
	p.SetObjective([]float64{3, 5})
	p.AddConstraint([]float64{1, 0}, LE, 4)
	p.AddConstraint([]float64{0, 2}, LE, 12)
	p.AddConstraint([]float64{3, 2}, LE, 18)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s.Objective, 36) || !almost(s.X[0], 2) || !almost(s.X[1], 6) {
		t.Fatalf("solution = %+v", s)
	}
}

func TestSimpleMinimizeWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y ≥ 10, x ≥ 2 → x=10? obj: put everything on x:
	// x=10,y=0 → 20; check.
	p := NewProblem(2, false)
	p.SetObjective([]float64{2, 3})
	p.AddConstraint([]float64{1, 1}, GE, 10)
	p.AddConstraint([]float64{1, 0}, GE, 2)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s.Objective, 20) || !almost(s.X[0], 10) {
		t.Fatalf("solution = %+v", s)
	}
}

func TestEquality(t *testing.T) {
	// max x + 2y s.t. x + y = 5, y ≤ 3 → y=3, x=2, obj=8.
	p := NewProblem(2, true)
	p.SetObjective([]float64{1, 2})
	p.AddConstraint([]float64{1, 1}, EQ, 5)
	p.AddConstraint([]float64{0, 1}, LE, 3)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s.Objective, 8) || !almost(s.X[0], 2) || !almost(s.X[1], 3) {
		t.Fatalf("solution = %+v", s)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1, true)
	p.SetObjective([]float64{1})
	p.AddConstraint([]float64{1}, GE, 5)
	p.AddConstraint([]float64{1}, LE, 3)
	if _, err := p.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want infeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(2, true)
	p.SetObjective([]float64{1, 1})
	p.AddConstraint([]float64{1, -1}, LE, 1)
	if _, err := p.Solve(); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want unbounded", err)
	}
}

func TestNegativeRHS(t *testing.T) {
	// max x s.t. -x ≤ -2 (i.e. x ≥ 2), x ≤ 7.
	p := NewProblem(1, true)
	p.SetObjective([]float64{1})
	p.AddConstraint([]float64{-1}, LE, -2)
	p.AddConstraint([]float64{1}, LE, 7)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s.Objective, 7) {
		t.Fatalf("objective = %v", s.Objective)
	}
	// And feasibility of the x ≥ 2 side with minimization.
	p2 := NewProblem(1, false)
	p2.SetObjectiveCoef(0, 1)
	p2.AddConstraint([]float64{-1}, LE, -2)
	s2, err := p2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s2.Objective, 2) {
		t.Fatalf("min objective = %v, want 2", s2.Objective)
	}
}

func TestDegenerate(t *testing.T) {
	// A classic degenerate LP that can cycle without Bland's rule (Beale).
	p := NewProblem(4, false)
	p.SetObjective([]float64{-0.75, 150, -0.02, 6})
	p.AddConstraint([]float64{0.25, -60, -0.04, 9}, LE, 0)
	p.AddConstraint([]float64{0.5, -90, -0.02, 3}, LE, 0)
	p.AddConstraint([]float64{0, 0, 1, 0}, LE, 1)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s.Objective, -0.05) {
		t.Fatalf("Beale objective = %v, want -0.05", s.Objective)
	}
}

func TestRedundantRows(t *testing.T) {
	// Duplicate equality rows create a redundant artificial basis.
	p := NewProblem(2, true)
	p.SetObjective([]float64{1, 1})
	p.AddConstraint([]float64{1, 1}, EQ, 4)
	p.AddConstraint([]float64{2, 2}, EQ, 8)
	p.AddConstraint([]float64{1, 0}, LE, 3)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s.Objective, 4) {
		t.Fatalf("objective = %v, want 4", s.Objective)
	}
}

func TestSparseConstraint(t *testing.T) {
	p := NewProblem(5, true)
	p.SetObjectiveCoef(4, 1)
	p.AddConstraintSparse([]int{4, 0}, []float64{1, 1}, LE, 3)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s.Objective, 3) {
		t.Fatalf("objective = %v", s.Objective)
	}
}

// TestRandom2DAgainstVertexEnumeration cross-checks the simplex on random
// bounded 2-variable maximization problems against brute-force enumeration
// of constraint intersections.
func TestRandom2DAgainstVertexEnumeration(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nc := 2 + rng.Intn(5)
		type cons struct{ a, b, r float64 }
		var cs []cons
		for i := 0; i < nc; i++ {
			cs = append(cs, cons{float64(1 + rng.Intn(5)), float64(1 + rng.Intn(5)), float64(1 + rng.Intn(20))})
		}
		c1, c2 := float64(1+rng.Intn(5)), float64(1+rng.Intn(5))

		p := NewProblem(2, true)
		p.SetObjective([]float64{c1, c2})
		for _, c := range cs {
			p.AddConstraint([]float64{c.a, c.b}, LE, c.r)
		}
		s, err := p.Solve()
		if err != nil {
			return false // positive coefficients: always feasible & bounded
		}

		// Enumerate candidate vertices: axes intersections and pairwise
		// constraint intersections.
		feasible := func(x, y float64) bool {
			if x < -1e-9 || y < -1e-9 {
				return false
			}
			for _, c := range cs {
				if c.a*x+c.b*y > c.r+1e-9 {
					return false
				}
			}
			return true
		}
		best := 0.0 // origin
		consider := func(x, y float64) {
			if feasible(x, y) {
				if v := c1*x + c2*y; v > best {
					best = v
				}
			}
		}
		for _, c := range cs {
			consider(c.r/c.a, 0)
			consider(0, c.r/c.b)
		}
		for i := 0; i < nc; i++ {
			for j := i + 1; j < nc; j++ {
				det := cs[i].a*cs[j].b - cs[j].a*cs[i].b
				if math.Abs(det) < 1e-12 {
					continue
				}
				x := (cs[i].r*cs[j].b - cs[j].r*cs[i].b) / det
				y := (cs[i].a*cs[j].r - cs[j].a*cs[i].r) / det
				consider(x, y)
			}
		}
		return math.Abs(s.Objective-best) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	p := NewProblem(2, true)
	for _, f := range []func(){
		func() { p.SetObjective([]float64{1}) },
		func() { p.AddConstraint([]float64{1}, LE, 1) },
		func() { p.AddConstraintSparse([]int{5}, []float64{1}, LE, 1) },
		func() { p.AddConstraintSparse([]int{0, 1}, []float64{1}, LE, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSenseString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" || Sense(9).String() != "?" {
		t.Fatalf("Sense.String broken")
	}
}
