// Package lp implements a dense two-phase primal simplex solver for linear
// programs over non-negative variables, supporting ≤, ≥ and = constraints.
// It solves the max-load Linear Program (15) of Section 7.2 without any
// external solver dependency. Bland's rule guarantees termination; the LPs
// solved here are small (tens of rows, a few hundred columns).
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is a constraint direction.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // ≤
	GE              // ≥
	EQ              // =
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Solver outcomes.
var (
	ErrInfeasible = errors.New("lp: infeasible")
	ErrUnbounded  = errors.New("lp: unbounded")
)

const tol = 1e-9

// Problem is a linear program over NumVars non-negative variables.
type Problem struct {
	numVars  int
	maximize bool
	obj      []float64
	rows     [][]float64
	senses   []Sense
	rhs      []float64
}

// NewProblem creates a problem with n non-negative variables and a zero
// objective; maximize selects the optimization direction.
func NewProblem(n int, maximize bool) *Problem {
	return &Problem{numVars: n, maximize: maximize, obj: make([]float64, n)}
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return p.numVars }

// SetObjective sets the full objective coefficient vector.
func (p *Problem) SetObjective(c []float64) {
	if len(c) != p.numVars {
		panic(fmt.Sprintf("lp: objective has %d coefficients, want %d", len(c), p.numVars))
	}
	copy(p.obj, c)
}

// SetObjectiveCoef sets a single objective coefficient.
func (p *Problem) SetObjectiveCoef(j int, c float64) { p.obj[j] = c }

// AddConstraint adds the dense constraint coefs·x (sense) rhs.
func (p *Problem) AddConstraint(coefs []float64, sense Sense, rhs float64) {
	if len(coefs) != p.numVars {
		panic(fmt.Sprintf("lp: constraint has %d coefficients, want %d", len(coefs), p.numVars))
	}
	row := make([]float64, p.numVars)
	copy(row, coefs)
	p.rows = append(p.rows, row)
	p.senses = append(p.senses, sense)
	p.rhs = append(p.rhs, rhs)
}

// AddConstraintSparse adds a constraint given as parallel index/value
// slices.
func (p *Problem) AddConstraintSparse(idx []int, val []float64, sense Sense, rhs float64) {
	if len(idx) != len(val) {
		panic("lp: sparse constraint index/value length mismatch")
	}
	row := make([]float64, p.numVars)
	for x, j := range idx {
		if j < 0 || j >= p.numVars {
			panic(fmt.Sprintf("lp: variable %d out of range", j))
		}
		row[j] += val[x]
	}
	p.rows = append(p.rows, row)
	p.senses = append(p.senses, sense)
	p.rhs = append(p.rhs, rhs)
}

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// Solution is an optimal LP solution.
type Solution struct {
	X         []float64
	Objective float64
}

// tableau is the dense simplex working state in canonical form.
type tableau struct {
	a       [][]float64
	b       []float64
	basis   []int
	numCols int
	banned  []bool // columns excluded from entering (artificials in phase 2)
}

func (t *tableau) pivot(row, col int) {
	p := t.a[row][col]
	inv := 1 / p
	for j := 0; j < t.numCols; j++ {
		t.a[row][j] *= inv
	}
	t.b[row] *= inv
	t.a[row][col] = 1 // avoid drift
	for i := range t.a {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j < t.numCols; j++ {
			t.a[i][j] -= f * t.a[row][j]
		}
		t.a[i][col] = 0
		t.b[i] -= f * t.b[row]
	}
	t.basis[row] = col
}

// minimize runs Bland-rule simplex iterations for the cost vector, returning
// ErrUnbounded if a ray of unbounded descent is found.
func (t *tableau) minimize(costs []float64) error {
	m := len(t.a)
	for iter := 0; ; iter++ {
		if iter > 100000 {
			return errors.New("lp: iteration limit exceeded")
		}
		// Reduced costs r_j = c_j - Σ_i c_B(i) a_ij; pick Bland's smallest
		// improving column.
		entering := -1
		for j := 0; j < t.numCols; j++ {
			if t.banned[j] {
				continue
			}
			r := costs[j]
			for i := 0; i < m; i++ {
				cb := costs[t.basis[i]]
				if cb != 0 {
					r -= cb * t.a[i][j]
				}
			}
			if r < -tol {
				entering = j
				break
			}
		}
		if entering == -1 {
			return nil // optimal
		}
		// Ratio test with Bland tie-break on the leaving basic variable.
		leaving := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if t.a[i][entering] > tol {
				ratio := t.b[i] / t.a[i][entering]
				if ratio < best-tol || (ratio < best+tol && (leaving == -1 || t.basis[i] < t.basis[leaving])) {
					best = ratio
					leaving = i
				}
			}
		}
		if leaving == -1 {
			return ErrUnbounded
		}
		t.pivot(leaving, entering)
	}
}

// Solve optimizes the problem with the two-phase simplex method.
func (p *Problem) Solve() (*Solution, error) {
	m := len(p.rows)
	n := p.numVars

	// Count auxiliary columns: one slack per LE, one surplus per GE, one
	// artificial per GE/EQ row and per LE row with negative RHS (after
	// normalizing RHS signs).
	type rowSpec struct {
		coefs []float64
		rhs   float64
		sense Sense
	}
	specs := make([]rowSpec, m)
	for i := range p.rows {
		coefs := make([]float64, n)
		copy(coefs, p.rows[i])
		rhs := p.rhs[i]
		sense := p.senses[i]
		if rhs < 0 {
			for j := range coefs {
				coefs[j] = -coefs[j]
			}
			rhs = -rhs
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		specs[i] = rowSpec{coefs, rhs, sense}
	}

	numSlack := 0
	numArt := 0
	for _, s := range specs {
		switch s.sense {
		case LE:
			numSlack++
		case GE:
			numSlack++ // surplus
			numArt++
		case EQ:
			numArt++
		}
	}
	numCols := n + numSlack + numArt

	t := &tableau{
		a:       make([][]float64, m),
		b:       make([]float64, m),
		basis:   make([]int, m),
		numCols: numCols,
		banned:  make([]bool, numCols),
	}
	artStart := n + numSlack
	slackCol := n
	artCol := artStart
	isArt := make([]bool, numCols)
	for i, s := range specs {
		row := make([]float64, numCols)
		copy(row, s.coefs)
		t.b[i] = s.rhs
		switch s.sense {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			isArt[artCol] = true
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			isArt[artCol] = true
			artCol++
		}
		t.a[i] = row
	}

	// Phase 1: minimize the sum of artificials.
	if numArt > 0 {
		phase1 := make([]float64, numCols)
		for j := artStart; j < numCols; j++ {
			phase1[j] = 1
		}
		if err := t.minimize(phase1); err != nil {
			return nil, err
		}
		infeas := 0.0
		for i := range t.basis {
			if isArt[t.basis[i]] {
				infeas += t.b[i]
			}
		}
		if infeas > 1e-7 {
			return nil, ErrInfeasible
		}
		// Drive remaining zero-level artificials out of the basis.
		for i := range t.basis {
			if !isArt[t.basis[i]] {
				continue
			}
			pivoted := false
			for j := 0; j < artStart; j++ {
				if math.Abs(t.a[i][j]) > tol {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: keep the artificial basic at zero; it can
				// never re-enter because artificial columns get banned.
				t.b[i] = 0
			}
		}
		for j := artStart; j < numCols; j++ {
			t.banned[j] = true
		}
	}

	// Phase 2: optimize the real objective (as a minimization).
	costs := make([]float64, numCols)
	for j := 0; j < n; j++ {
		if p.maximize {
			costs[j] = -p.obj[j]
		} else {
			costs[j] = p.obj[j]
		}
	}
	if err := t.minimize(costs); err != nil {
		return nil, err
	}

	x := make([]float64, n)
	for i, bj := range t.basis {
		if bj < n {
			x[bj] = t.b[i]
		}
	}
	objective := 0.0
	for j := 0; j < n; j++ {
		objective += p.obj[j] * x[j]
	}
	return &Solution{X: x, Objective: objective}, nil
}
