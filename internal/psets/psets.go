// Package psets classifies families of processing set restrictions into the
// structures studied by the paper (Section 3): interval, nested, inclusive
// and disjoint, and provides the reductions of Figure 1, including the
// machine renumbering that turns any nested family into a family of
// contiguous intervals.
package psets

import (
	"fmt"
	"sort"

	"flowsched/internal/core"
)

// Family is a collection of distinct processing sets on m machines.
type Family struct {
	M    int
	Sets []core.ProcSet
}

// FromInstance extracts the family of distinct processing sets of an
// instance, resolving unrestricted sets to the full machine interval.
func FromInstance(inst *core.Instance) Family {
	return Family{M: inst.M, Sets: inst.Sets()}
}

// NewFamily builds a family from the given sets, deduplicating and resolving
// unrestricted (nil) sets against m machines.
func NewFamily(m int, sets ...core.ProcSet) Family {
	var out []core.ProcSet
	for _, s := range sets {
		r := s.Resolve(m)
		dup := false
		for _, u := range out {
			if u.Equal(r) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, r)
		}
	}
	return Family{M: m, Sets: out}
}

// IsDisjoint reports whether the family has the M_i(disjoint) structure:
// every pair of sets is either equal or disjoint.
func (f Family) IsDisjoint() bool {
	for i := 0; i < len(f.Sets); i++ {
		for j := i + 1; j < len(f.Sets); j++ {
			a, b := f.Sets[i], f.Sets[j]
			if !a.Equal(b) && a.Intersects(b) {
				return false
			}
		}
	}
	return true
}

// IsInclusive reports whether the family has the M_i(inclusive) structure:
// every pair of sets is comparable by inclusion (a laminar chain).
func (f Family) IsInclusive() bool {
	for i := 0; i < len(f.Sets); i++ {
		for j := i + 1; j < len(f.Sets); j++ {
			a, b := f.Sets[i], f.Sets[j]
			if !a.SubsetOf(b) && !b.SubsetOf(a) {
				return false
			}
		}
	}
	return true
}

// IsNested reports whether the family has the M_i(nested) structure: every
// pair of sets is comparable by inclusion or disjoint (a laminar family).
func (f Family) IsNested() bool {
	for i := 0; i < len(f.Sets); i++ {
		for j := i + 1; j < len(f.Sets); j++ {
			a, b := f.Sets[i], f.Sets[j]
			if !a.SubsetOf(b) && !b.SubsetOf(a) && a.Intersects(b) {
				return false
			}
		}
	}
	return true
}

// IsInterval reports whether every set of the family is an interval of
// machine indices in the paper's sense: either a contiguous range {a..b} or
// a wrap-around range {..a} ∪ {b..} on the ring of m machines.
func (f Family) IsInterval() bool {
	for _, s := range f.Sets {
		if !s.IsCircularInterval(f.M) {
			return false
		}
	}
	return true
}

// UniformSize returns (k, true) when every set in the family has exactly k
// machines, and (0, false) otherwise. An empty family reports (0, true).
func (f Family) UniformSize() (int, bool) {
	if len(f.Sets) == 0 {
		return 0, true
	}
	k := f.Sets[0].Len()
	for _, s := range f.Sets[1:] {
		if s.Len() != k {
			return 0, false
		}
	}
	return k, true
}

// Classify returns the most specific structure names that hold for the
// family, in the partial order of Figure 1. It always reports every
// structure that holds (e.g. a disjoint family also reports nested and, if
// applicable after renumbering, interval is NOT implied set-wise, so
// interval is only reported when the sets are intervals as given).
func (f Family) Classify() []string {
	var out []string
	if f.IsDisjoint() {
		out = append(out, "disjoint")
	}
	if f.IsInclusive() {
		out = append(out, "inclusive")
	}
	if f.IsNested() {
		out = append(out, "nested")
	}
	if f.IsInterval() {
		out = append(out, "interval")
	}
	if len(out) == 0 {
		out = append(out, "general")
	}
	return out
}

// IntervalOrder computes a renumbering of machines under which every set of
// a nested family becomes a contiguous interval — the reduction
// nested → interval of Figure 1 ("it is always possible to reorder the
// machines so that one obtains contiguous intervals"). It returns a
// permutation perm where perm[old] = new machine index, or an error if the
// family is not nested.
//
// The algorithm builds the laminar forest of the sets and lays machines out
// by depth-first traversal, so every set owns a contiguous block of new
// indices.
func (f Family) IntervalOrder() ([]int, error) {
	if !f.IsNested() {
		return nil, fmt.Errorf("psets: family is not nested")
	}
	// Sort sets by decreasing size so parents precede children.
	sets := make([]core.ProcSet, len(f.Sets))
	copy(sets, f.Sets)
	sort.SliceStable(sets, func(i, j int) bool { return sets[i].Len() > sets[j].Len() })

	// children[i] lists the indices of the maximal proper subsets of sets[i];
	// roots are sets with no proper superset.
	parent := make([]int, len(sets))
	for i := range parent {
		parent[i] = -1
	}
	for i := range sets {
		// The smallest superset that appears before i (strictly larger or
		// equal-size duplicates are excluded by NewFamily dedup).
		best := -1
		for j := 0; j < i; j++ {
			if sets[i].SubsetOf(sets[j]) && !sets[i].Equal(sets[j]) {
				if best == -1 || sets[j].Len() < sets[best].Len() {
					best = j
				}
			}
		}
		parent[i] = best
	}
	children := make([][]int, len(sets))
	var roots []int
	for i, p := range parent {
		if p == -1 {
			roots = append(roots, i)
		} else {
			children[p] = append(children[p], i)
		}
	}

	perm := make([]int, f.M)
	for j := range perm {
		perm[j] = -1
	}
	next := 0
	assigned := make([]bool, f.M)

	var layout func(i int)
	layout = func(i int) {
		// First lay out children blocks, then the remaining machines owned
		// directly by this set.
		covered := make(map[int]bool)
		for _, c := range children[i] {
			layout(c)
			for _, mach := range sets[c] {
				covered[mach] = true
			}
		}
		for _, mach := range sets[i] {
			if !covered[mach] && !assigned[mach] {
				perm[mach] = next
				next++
				assigned[mach] = true
			}
		}
	}
	for _, r := range roots {
		layout(r)
	}
	// Machines in no set keep arbitrary trailing positions.
	for j := 0; j < f.M; j++ {
		if perm[j] == -1 {
			perm[j] = next
			next++
		}
	}
	return perm, nil
}

// Renumber applies a machine permutation (perm[old] = new) to the family,
// returning the renamed sets.
func (f Family) Renumber(perm []int) Family {
	out := make([]core.ProcSet, len(f.Sets))
	for i, s := range f.Sets {
		ids := make([]int, len(s))
		for x, j := range s {
			ids[x] = perm[j]
		}
		out[i] = core.NewProcSet(ids...)
	}
	return Family{M: f.M, Sets: out}
}

// RenumberInstance applies a machine permutation to every task of an
// instance, returning a new instance. Unrestricted sets stay unrestricted.
func RenumberInstance(inst *core.Instance, perm []int) *core.Instance {
	out := inst.Clone()
	for i := range out.Tasks {
		s := out.Tasks[i].Set
		if s == nil {
			continue
		}
		ids := make([]int, len(s))
		for x, j := range s {
			ids[x] = perm[j]
		}
		out.Tasks[i].Set = core.NewProcSet(ids...)
	}
	return out
}
