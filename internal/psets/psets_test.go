package psets

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flowsched/internal/core"
)

func TestClassifyDisjoint(t *testing.T) {
	f := NewFamily(6, core.Interval(0, 1), core.Interval(2, 3), core.Interval(4, 5))
	if !f.IsDisjoint() || !f.IsNested() || !f.IsInterval() {
		t.Fatalf("disjoint blocks misclassified: %v", f.Classify())
	}
	if f.IsInclusive() {
		t.Fatalf("disjoint blocks are not inclusive")
	}
	if k, ok := f.UniformSize(); !ok || k != 2 {
		t.Fatalf("UniformSize = %d %v", k, ok)
	}
}

func TestClassifyInclusive(t *testing.T) {
	f := NewFamily(8, core.Interval(0, 7), core.Interval(0, 3), core.Interval(0, 1))
	if !f.IsInclusive() || !f.IsNested() {
		t.Fatalf("chain misclassified")
	}
	if f.IsDisjoint() {
		t.Fatalf("chain is not disjoint")
	}
}

func TestClassifyNestedOnly(t *testing.T) {
	// {0..3}, {0,1}, {2,3}: nested but neither inclusive nor disjoint.
	f := NewFamily(4, core.Interval(0, 3), core.Interval(0, 1), core.Interval(2, 3))
	if !f.IsNested() {
		t.Fatalf("should be nested")
	}
	if f.IsInclusive() || f.IsDisjoint() {
		t.Fatalf("should be nested only, got %v", f.Classify())
	}
}

func TestClassifyGeneral(t *testing.T) {
	// Two properly overlapping sets: no structure (except not interval? they
	// are intervals as given). {0,1} and {1,2} overlap without inclusion.
	f := NewFamily(3, core.Interval(0, 1), core.Interval(1, 2))
	if f.IsNested() || f.IsDisjoint() || f.IsInclusive() {
		t.Fatalf("overlapping intervals misclassified: %v", f.Classify())
	}
	if !f.IsInterval() {
		t.Fatalf("they are intervals")
	}
}

func TestClassifyNonInterval(t *testing.T) {
	f := NewFamily(5, core.NewProcSet(0, 2, 4))
	if f.IsInterval() {
		t.Fatalf("{0,2,4} is not an interval on 5 machines")
	}
	if got := NewFamily(5, core.NewProcSet(0, 4)).IsInterval(); !got {
		t.Fatalf("{0,4} wraps on the ring and is an interval in the paper's sense")
	}
}

// TestFigure1Reductions verifies the reduction graph of Figure 1 on random
// families: disjoint ⇒ nested, inclusive ⇒ nested, and nested ⇒ interval
// after machine renumbering.
func TestFigure1Reductions(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(14)

		d := RandomDisjointPartition(m, 1+rng.Intn(m))
		if !d.IsDisjoint() || !d.IsNested() {
			return false
		}
		incl := RandomInclusiveChain(m, 1+rng.Intn(5), rng)
		if !incl.IsInclusive() || !incl.IsNested() {
			return false
		}
		nested := RandomNested(m, rng)
		if !nested.IsNested() {
			return false
		}
		perm, err := nested.IntervalOrder()
		if err != nil {
			return false
		}
		renamed := nested.Renumber(perm)
		for _, s := range renamed.Sets {
			if !s.IsContiguous() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalOrderRejectsNonNested(t *testing.T) {
	f := NewFamily(3, core.Interval(0, 1), core.Interval(1, 2))
	if _, err := f.IntervalOrder(); err == nil {
		t.Fatalf("IntervalOrder should fail on a non-nested family")
	}
}

func TestIntervalOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		m := 2 + rng.Intn(12)
		f := RandomNested(m, rng)
		perm, err := f.IntervalOrder()
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, m)
		for _, p := range perm {
			if p < 0 || p >= m || seen[p] {
				t.Fatalf("perm %v is not a permutation of 0..%d", perm, m-1)
			}
			seen[p] = true
		}
	}
}

func TestRenumberInstance(t *testing.T) {
	inst := core.NewInstance(3, []core.Task{
		{Release: 0, Proc: 1, Set: core.NewProcSet(0, 2)},
		{Release: 0, Proc: 1}, // unrestricted
	})
	perm := []int{2, 1, 0}
	out := RenumberInstance(inst, perm)
	if !out.Tasks[0].Set.Equal(core.NewProcSet(0, 2)) {
		t.Fatalf("renumbered set = %v", out.Tasks[0].Set)
	}
	if out.Tasks[1].Set != nil {
		t.Fatalf("unrestricted set should stay nil")
	}
	// Original untouched.
	if !inst.Tasks[0].Set.Equal(core.NewProcSet(0, 2)) {
		t.Fatalf("original instance modified")
	}
}

func TestFromInstance(t *testing.T) {
	inst := core.NewInstance(4, []core.Task{
		{Release: 0, Proc: 1, Set: core.Interval(0, 1)},
		{Release: 0, Proc: 1, Set: core.Interval(0, 1)},
		{Release: 0, Proc: 1, Set: core.Interval(2, 3)},
	})
	f := FromInstance(inst)
	if len(f.Sets) != 2 || !f.IsDisjoint() {
		t.Fatalf("FromInstance = %+v", f)
	}
}

func TestUniformSizeNonUniform(t *testing.T) {
	f := NewFamily(4, core.Interval(0, 1), core.Interval(0, 2))
	if _, ok := f.UniformSize(); ok {
		t.Fatalf("sizes 2 and 3 should not be uniform")
	}
	empty := Family{M: 4}
	if _, ok := empty.UniformSize(); !ok {
		t.Fatalf("empty family is vacuously uniform")
	}
}

func TestClassifyNames(t *testing.T) {
	gen := NewFamily(4, core.NewProcSet(0, 1), core.NewProcSet(1, 2), core.NewProcSet(0, 2))
	names := gen.Classify()
	if len(names) != 1 || names[0] != "general" {
		t.Fatalf("Classify = %v", names)
	}
}

func TestRandomGeneratorsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	iv := RandomIntervals(10, 3, 5, rng)
	if !iv.IsInterval() {
		t.Fatalf("RandomIntervals not intervals")
	}
	if k, ok := iv.UniformSize(); !ok || k != 3 {
		t.Fatalf("RandomIntervals size = %d %v", k, ok)
	}
	g := RandomGeneral(8, 6, rng)
	for _, s := range g.Sets {
		if s.Len() == 0 {
			t.Fatalf("RandomGeneral produced empty set")
		}
	}
}
