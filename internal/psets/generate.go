package psets

import (
	"math/rand"

	"flowsched/internal/core"
)

// RandomDisjointPartition splits machines 0..m-1 into consecutive blocks of
// size k (the last block may be smaller) and returns the family of blocks,
// matching the disjoint replication strategy of Section 7.2.
func RandomDisjointPartition(m, k int) Family {
	var sets []core.ProcSet
	for lo := 0; lo < m; lo += k {
		hi := lo + k - 1
		if hi >= m {
			hi = m - 1
		}
		sets = append(sets, core.Interval(lo, hi))
	}
	return Family{M: m, Sets: sets}
}

// RandomInclusiveChain draws a random chain of nested sets
// S_1 ⊇ S_2 ⊇ ... ⊇ S_d over m machines: an inclusive family.
func RandomInclusiveChain(m, depth int, rng *rand.Rand) Family {
	cur := core.Interval(0, m-1)
	sets := []core.ProcSet{cur}
	for d := 1; d < depth && cur.Len() > 1; d++ {
		// Keep a random non-empty strict subset of cur.
		size := 1 + rng.Intn(cur.Len()-1)
		idx := rng.Perm(cur.Len())[:size]
		ids := make([]int, size)
		for x, i := range idx {
			ids[x] = cur[i]
		}
		cur = core.NewProcSet(ids...)
		sets = append(sets, cur)
	}
	return NewFamily(m, sets...)
}

// RandomNested draws a random laminar (nested) family over m machines by
// recursively splitting intervals of a random machine permutation. The
// family is nested as a set family but its members are generally not
// contiguous intervals of the original numbering, which exercises
// IntervalOrder.
func RandomNested(m int, rng *rand.Rand) Family {
	perm := rng.Perm(m)
	var sets []core.ProcSet
	var split func(lo, hi int)
	split = func(lo, hi int) {
		ids := make([]int, 0, hi-lo+1)
		for x := lo; x <= hi; x++ {
			ids = append(ids, perm[x])
		}
		sets = append(sets, core.NewProcSet(ids...))
		if hi-lo+1 <= 2 || rng.Intn(3) == 0 {
			return
		}
		mid := lo + 1 + rng.Intn(hi-lo-1)
		split(lo, mid)
		split(mid+1, hi)
	}
	split(0, m-1)
	return NewFamily(m, sets...)
}

// RandomIntervals draws n random contiguous intervals of size k on m
// machines (an interval family with uniform sizes).
func RandomIntervals(m, k, n int, rng *rand.Rand) Family {
	var sets []core.ProcSet
	for i := 0; i < n; i++ {
		lo := rng.Intn(m - k + 1)
		sets = append(sets, core.Interval(lo, lo+k-1))
	}
	return NewFamily(m, sets...)
}

// RandomGeneral draws n arbitrary random non-empty subsets of 0..m-1.
func RandomGeneral(m, n int, rng *rand.Rand) Family {
	var sets []core.ProcSet
	for i := 0; i < n; i++ {
		var ids []int
		for j := 0; j < m; j++ {
			if rng.Intn(2) == 0 {
				ids = append(ids, j)
			}
		}
		if len(ids) == 0 {
			ids = append(ids, rng.Intn(m))
		}
		sets = append(sets, core.NewProcSet(ids...))
	}
	return NewFamily(m, sets...)
}
