// Package replicate implements the replication strategies of Section 7.2:
// given the primary machine u of a key (the only holder without
// replication), a Strategy produces the processing set M'_i = I_k(u) of
// every task requesting that key.
//
// The paper studies two strategies — Overlapping ring intervals
// (Dynamo/Cassandra style) and Disjoint blocks — plus no replication. Two
// extensions (RandomK and OffsetDisjoint) are provided for the ablation
// experiments around the paper's open question (Section 8).
package replicate

import (
	"fmt"
	"math/rand"

	"flowsched/internal/core"
)

// Strategy maps a primary machine to the processing set of its keys on a
// cluster of m machines.
type Strategy interface {
	Name() string
	// Set returns the processing set I_k(u) for primary machine u (0-based)
	// on m machines. Implementations must return a set containing u.
	Set(u, m int) core.ProcSet
}

// None is the no-replication strategy: |M_i| = 1.
type None struct{}

// Name implements Strategy.
func (None) Name() string { return "none" }

// Set implements Strategy.
func (None) Set(u, m int) core.ProcSet { return core.NewProcSet(u) }

// Overlapping replicates each key on the K-1 clockwise successors of its
// primary on the machine ring:
//
//	I_k(u) = { M_j : j = (j'-1) mod m + 1 for u ≤ j' ≤ u+k-1 }.
//
// This is the standard key-value store scheme (Dynamo, Cassandra).
type Overlapping struct{ K int }

// Name implements Strategy.
func (o Overlapping) Name() string { return fmt.Sprintf("overlapping(k=%d)", o.K) }

// Set implements Strategy.
func (o Overlapping) Set(u, m int) core.ProcSet {
	checkK(o.K, m)
	return core.MustRingInterval(u, o.K, m)
}

// Disjoint divides the cluster into ⌈m/K⌉ consecutive blocks of size K (the
// last block may be shorter):
//
//	I_k(u) = { M_j : u'+1 ≤ j ≤ min(m, u'+k) },  u' = k⌊(u-1)/k⌋.
type Disjoint struct{ K int }

// Name implements Strategy.
func (d Disjoint) Name() string { return fmt.Sprintf("disjoint(k=%d)", d.K) }

// Set implements Strategy.
func (d Disjoint) Set(u, m int) core.ProcSet {
	checkK(d.K, m)
	lo := (u / d.K) * d.K
	hi := lo + d.K - 1
	if hi >= m {
		hi = m - 1
	}
	return core.Interval(lo, hi)
}

// OffsetDisjoint is Disjoint with the block boundaries rotated by Offset
// machines on the ring, an ablation for how partition alignment interacts
// with a popularity bias. Offset = 0 reduces to Disjoint on a ring.
type OffsetDisjoint struct {
	K      int
	Offset int
}

// Name implements Strategy.
func (d OffsetDisjoint) Name() string {
	return fmt.Sprintf("offset-disjoint(k=%d,off=%d)", d.K, d.Offset)
}

// Set implements Strategy.
func (d OffsetDisjoint) Set(u, m int) core.ProcSet {
	checkK(d.K, m)
	shift := ((u-d.Offset)%m + m) % m
	lo := (shift / d.K) * d.K
	hi := lo + d.K - 1
	if hi >= m {
		hi = m - 1
	}
	ids := make([]int, 0, hi-lo+1)
	for j := lo; j <= hi; j++ {
		ids = append(ids, ((j+d.Offset)%m+m)%m)
	}
	return core.NewProcSet(ids...)
}

// RandomK replicates each primary on K-1 additional machines drawn once,
// uniformly without replacement, from the remaining cluster (an unstructured
// baseline: the resulting family generally has none of the paper's
// structures). The assignment is memoized per primary so that all tasks for
// the same key share the same processing set, as in a real store.
type RandomK struct {
	K   int
	Rng *rand.Rand

	memo map[int]core.ProcSet
}

// NewRandomK builds a RandomK strategy with its own memo table.
func NewRandomK(k int, rng *rand.Rand) *RandomK {
	return &RandomK{K: k, Rng: rng, memo: make(map[int]core.ProcSet)}
}

// Name implements Strategy.
func (r *RandomK) Name() string { return fmt.Sprintf("random(k=%d)", r.K) }

// Set implements Strategy.
func (r *RandomK) Set(u, m int) core.ProcSet {
	checkK(r.K, m)
	if s, ok := r.memo[u]; ok {
		return s
	}
	ids := []int{u}
	perm := r.Rng.Perm(m)
	for _, j := range perm {
		if len(ids) == r.K {
			break
		}
		if j != u {
			ids = append(ids, j)
		}
	}
	s := core.NewProcSet(ids...)
	r.memo[u] = s
	return s
}

// CheckK validates a replication factor against a cluster size: k must lie
// in [1, m].
func CheckK(k, m int) error {
	if k < 1 || k > m {
		return fmt.Errorf("replicate: replication factor k=%d out of range [1, %d]", k, m)
	}
	return nil
}

func checkK(k, m int) {
	if err := CheckK(k, m); err != nil {
		panic(err.Error())
	}
}

// Validator is implemented by strategies whose parameters can be checked
// against a cluster size up front, turning the late checkK panic inside Set
// into a clear error at construction/validation time.
type Validator interface {
	Validate(m int) error
}

// Validate implements Validator.
func (o Overlapping) Validate(m int) error { return CheckK(o.K, m) }

// Validate implements Validator.
func (d Disjoint) Validate(m int) error { return CheckK(d.K, m) }

// Validate implements Validator.
func (d OffsetDisjoint) Validate(m int) error { return CheckK(d.K, m) }

// Validate implements Validator.
func (r *RandomK) Validate(m int) error { return CheckK(r.K, m) }

// Validate checks a strategy against a cluster of m machines: strategies
// implementing Validator are asked directly; others (None, unrestricted
// pseudo-strategies) are always valid.
func Validate(s Strategy, m int) error {
	if m < 1 {
		return fmt.Errorf("replicate: need at least one machine, got %d", m)
	}
	if v, ok := s.(Validator); ok {
		return v.Validate(m)
	}
	return nil
}

// Transferable reports, for analysis code, whether work originally owned by
// primary u may be processed by machine j under the strategy — the condition
// M_i ∈ I_k(j) of constraint (15d), expressed from the primary's viewpoint.
func Transferable(s Strategy, u, j, m int) bool {
	return s.Set(u, m).Contains(j)
}
