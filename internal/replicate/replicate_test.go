package replicate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flowsched/internal/core"
	"flowsched/internal/psets"
)

func TestFigure9Example(t *testing.T) {
	// Paper Figure 9: m=6, k=3, primary M3 (0-based 2).
	// Overlapping: {M3,M4,M5}; Disjoint: {M1,M2,M3}.
	ov := Overlapping{K: 3}.Set(2, 6)
	if !ov.Equal(core.NewProcSet(2, 3, 4)) {
		t.Fatalf("overlapping = %v, want {M3,M4,M5}", ov)
	}
	dj := Disjoint{K: 3}.Set(2, 6)
	if !dj.Equal(core.NewProcSet(0, 1, 2)) {
		t.Fatalf("disjoint = %v, want {M1,M2,M3}", dj)
	}
}

func TestOverlappingWraps(t *testing.T) {
	s := Overlapping{K: 3}.Set(5, 6)
	if !s.Equal(core.NewProcSet(0, 1, 5)) {
		t.Fatalf("overlapping wrap = %v, want {M6,M1,M2}", s)
	}
}

func TestDisjointLastBlockShort(t *testing.T) {
	// m=7, k=3: blocks {0,1,2},{3,4,5},{6}.
	d := Disjoint{K: 3}
	if !d.Set(6, 7).Equal(core.NewProcSet(6)) {
		t.Fatalf("last block = %v", d.Set(6, 7))
	}
	if !d.Set(4, 7).Equal(core.NewProcSet(3, 4, 5)) {
		t.Fatalf("middle block = %v", d.Set(4, 7))
	}
}

func TestNone(t *testing.T) {
	if !(None{}).Set(3, 6).Equal(core.NewProcSet(3)) {
		t.Fatalf("None should return the primary only")
	}
}

func TestStrategyProperties(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(14)
		k := 1 + rng.Intn(m)
		strategies := []Strategy{
			None{},
			Overlapping{K: k},
			Disjoint{K: k},
			OffsetDisjoint{K: k, Offset: rng.Intn(m)},
			NewRandomK(k, rng),
		}
		for _, s := range strategies {
			for u := 0; u < m; u++ {
				set := s.Set(u, m)
				// Primary always in the set.
				if !set.Contains(u) {
					return false
				}
				// Size: exactly k for overlapping/random, ≤ k otherwise
				// (disjoint last block may be short; None is 1).
				switch s.(type) {
				case Overlapping, *RandomK:
					if set.Len() != k {
						return false
					}
				case None:
					if set.Len() != 1 {
						return false
					}
				default:
					if set.Len() < 1 || set.Len() > k {
						return false
					}
				}
				// Determinism: same primary, same set.
				if !s.Set(u, m).Equal(set) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestDisjointFamilyStructure verifies the structural claims of the paper:
// the disjoint strategy yields a disjoint family (Theorem 6 applies), the
// overlapping strategy yields circular intervals that overlap for k > 1.
func TestDisjointFamilyStructure(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(14)
		k := 1 + rng.Intn(m)

		var dsets, osets []core.ProcSet
		for u := 0; u < m; u++ {
			dsets = append(dsets, Disjoint{K: k}.Set(u, m))
			osets = append(osets, Overlapping{K: k}.Set(u, m))
		}
		df := psets.NewFamily(m, dsets...)
		if !df.IsDisjoint() || !df.IsInterval() {
			return false
		}
		of := psets.NewFamily(m, osets...)
		if !of.IsInterval() {
			return false
		}
		if k > 1 && k < m && of.IsDisjoint() {
			return false // overlapping sets must actually overlap
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestOffsetDisjointIsPartition(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(14)
		k := 1 + rng.Intn(m)
		off := rng.Intn(2 * m)
		s := OffsetDisjoint{K: k, Offset: off}
		var sets []core.ProcSet
		for u := 0; u < m; u++ {
			sets = append(sets, s.Set(u, m))
		}
		f := psets.NewFamily(m, sets...)
		if !f.IsDisjoint() {
			return false
		}
		// Every machine covered exactly once across distinct sets.
		covered := make([]int, m)
		for _, set := range f.Sets {
			for _, j := range set {
				covered[j]++
			}
		}
		for _, c := range covered {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestOffsetDisjointZeroOffsetMatchesDisjoint(t *testing.T) {
	for m := 2; m <= 12; m++ {
		for k := 1; k <= m; k++ {
			for u := 0; u < m; u++ {
				a := Disjoint{K: k}.Set(u, m)
				b := OffsetDisjoint{K: k}.Set(u, m)
				if !a.Equal(b) {
					t.Fatalf("m=%d k=%d u=%d: %v vs %v", m, k, u, a, b)
				}
			}
		}
	}
}

func TestRandomKMemoizes(t *testing.T) {
	r := NewRandomK(3, rand.New(rand.NewSource(7)))
	a := r.Set(2, 10)
	b := r.Set(2, 10)
	if !a.Equal(b) {
		t.Fatalf("RandomK should memoize per primary: %v vs %v", a, b)
	}
}

func TestTransferable(t *testing.T) {
	// Overlapping m=6 k=3: work of primary 2 can go to machines {2,3,4}.
	s := Overlapping{K: 3}
	if !Transferable(s, 2, 3, 6) || Transferable(s, 2, 1, 6) {
		t.Fatalf("Transferable wrong")
	}
}

func TestCheckKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for k > m")
		}
	}()
	Overlapping{K: 7}.Set(0, 3)
}

func TestNames(t *testing.T) {
	if (None{}).Name() != "none" ||
		(Overlapping{K: 3}).Name() != "overlapping(k=3)" ||
		(Disjoint{K: 3}).Name() != "disjoint(k=3)" {
		t.Fatalf("names wrong")
	}
}
