// Package hedge configures the tail-tolerance layer of the simulator:
// speculative duplicate dispatch with first-win cancellation (hedged
// requests, in the "tail at scale" sense). When a dispatched request's age
// crosses a trigger — a fixed delay, or a live flow-time quantile streamed
// from the run's own completions — the engine re-dispatches a copy of the
// request to the best *other* eligible server of its processing set; the
// first completion wins and the losing attempt is cancelled (always before
// it starts service, optionally mid-service).
//
// The theory lens is Bansal–Kulkarni's unrelated-machines setting
// (PAPERS.md): when effective per-machine speeds diverge (gray failures,
// stragglers), committing a request to one machine choice is the whole
// problem, and speculation across the structured processing set — which
// the paper's ring intervals provide for free — is the online answer.
// Mäcker et al.'s setup-times model motivates charging every hedge its
// real duplicate-work cost: copies occupy servers, and the engine accounts
// the burned and reclaimed busy time separately (ElasticMetrics'
// DuplicateWork / CancelledWork).
//
// This package deliberately holds only the configuration; the mechanism
// lives in the unified engine (sim.RunHedged), the invariants in
// internal/audit, and the randomized trials in internal/chaos.
package hedge

import (
	"fmt"
	"math"

	"flowsched/internal/core"
)

// DefaultMinSamples is the quantile trigger's warm-up: below this many
// completed requests the streamed histogram is too coarse to trust, and the
// trigger falls back to Delay (or stays off).
const DefaultMinSamples = 20

// Config describes the hedging policy of one run. A nil *Config disables
// the layer entirely: sim.RunHedged then reproduces sim.RunElastic bit for
// bit.
//
// Exactly one trigger style applies per request:
//
//   - Tied requests (Tied = true): the copy is enqueued immediately at
//     first dispatch, and the loser is revoked when the winner enters
//     service — "tied requests" in the tail-at-scale sense. Delay and
//     Quantile are ignored.
//   - Quantile trigger (Quantile ∈ (0,1)): the copy is issued when the
//     request's age crosses the live flow-time quantile of the run's own
//     completions so far (an obs.Histogram streamed by the engine). Until
//     MinSamples completions have been observed the trigger falls back to
//     Delay, or stays off when Delay is 0.
//   - Fixed delay (Delay > 0): the copy is issued when the request has
//     been in queue + in service for Delay.
type Config struct {
	// Delay is the fixed-age trigger: hedge a request once it has waited
	// Delay since its first dispatch. Also the warm-up fallback of the
	// quantile trigger.
	Delay core.Time
	// Quantile, when in (0,1), triggers off the live flow-time quantile of
	// the run's completions (e.g. 0.95 hedges requests older than the
	// current p95 flow).
	Quantile float64
	// MinSamples is the completion count below which the quantile trigger
	// is not trusted (default DefaultMinSamples).
	MinSamples int
	// MaxHedges caps the total number of hedges issued per run (0 =
	// unlimited) — a duplicate-work budget.
	MaxHedges int
	// Tied enqueues the copy up front and revokes the loser at service
	// start instead of waiting for a trigger.
	Tied bool
	// CancelRunning also cancels a losing attempt that has already entered
	// service, reclaiming its remaining busy time (cancel-mid-service).
	// Off, a started loser runs to completion as pure duplicate work.
	CancelRunning bool
}

// minSamples resolves the quantile warm-up threshold.
func (c *Config) MinSamplesOrDefault() int {
	if c.MinSamples > 0 {
		return c.MinSamples
	}
	return DefaultMinSamples
}

// Validate checks the configuration. A nil config is valid (the layer is
// off). A non-nil config must carry at least one trigger: Tied, a positive
// Delay, or a Quantile in (0,1).
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	if c.Delay < 0 || math.IsNaN(float64(c.Delay)) || math.IsInf(float64(c.Delay), 0) {
		return fmt.Errorf("hedge: delay %v must be finite and non-negative", c.Delay)
	}
	if c.Quantile != 0 && !(c.Quantile > 0 && c.Quantile < 1) {
		return fmt.Errorf("hedge: quantile %v outside (0, 1)", c.Quantile)
	}
	if c.MinSamples < 0 {
		return fmt.Errorf("hedge: min samples %d must be non-negative", c.MinSamples)
	}
	if c.MaxHedges < 0 {
		return fmt.Errorf("hedge: max hedges %d must be non-negative", c.MaxHedges)
	}
	if !c.Tied && c.Delay == 0 && c.Quantile == 0 {
		return fmt.Errorf("hedge: config needs a trigger: set Delay, Quantile, or Tied")
	}
	return nil
}
