package sched

import (
	"fmt"

	"flowsched/internal/core"
)

// JSQ (join shortest queue) is a non-clairvoyant immediate-dispatch baseline
// used in the extension experiments: each released task goes to the eligible
// machine currently holding the fewest unfinished tasks, ties broken by the
// smallest index. Unlike EFT it never inspects processing times when
// choosing, which is what a real key-value store router can actually
// observe; the schedule's start times are still simulated exactly.
type JSQ struct {
	completion []core.Time
	// pending[j] holds the completion times of j's unfinished tasks; entries
	// with completion ≤ now are dropped lazily.
	pending [][]core.Time
}

// NewJSQ returns a join-shortest-queue scheduler.
func NewJSQ() *JSQ { return &JSQ{} }

// Name implements Online.
func (q *JSQ) Name() string { return "JSQ" }

// Reset implements Online.
func (q *JSQ) Reset(m int) {
	q.completion = make([]core.Time, m)
	q.pending = make([][]core.Time, m)
}

// queueLen returns the number of unfinished tasks on machine j at time now.
func (q *JSQ) queueLen(j int, now core.Time) int {
	p := q.pending[j]
	keep := p[:0]
	for _, c := range p {
		if c > now {
			keep = append(keep, c)
		}
	}
	q.pending[j] = keep
	return len(keep)
}

// Dispatch implements Online.
func (q *JSQ) Dispatch(t core.Task) Decision {
	m := len(q.completion)
	best, bestLen := -1, 0
	consider := func(j int) {
		l := q.queueLen(j, t.Release)
		if best == -1 || l < bestLen {
			best, bestLen = j, l
		}
	}
	if t.Set == nil {
		for j := 0; j < m; j++ {
			consider(j)
		}
	} else {
		for _, j := range t.Set {
			consider(j)
		}
	}
	start := q.completion[best]
	if t.Release > start {
		start = t.Release
	}
	q.completion[best] = start + t.Proc
	q.pending[best] = append(q.pending[best], q.completion[best])
	return Decision{Machine: best, Start: start}
}

// Run implements Algorithm.
func (q *JSQ) Run(inst *core.Instance) (*core.Schedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", q.Name(), err)
	}
	return RunOnline(q, inst), nil
}
