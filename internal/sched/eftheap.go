package sched

import (
	"fmt"

	"flowsched/internal/core"
	"flowsched/internal/eventq"
)

// EFTHeap is an O(log m)-per-task EFT scheduler for the unrestricted
// problem P|online-r_i|Fmax: machine completion times live in an indexed
// min-heap, so dispatch does not scan all machines. Its tie-break picks the
// machine with the lexicographically smallest (completion time, index) pair,
// which differs from EFT-Min only in which machine of the tie set runs the
// task: every start time — hence every flow time and Fmax — is identical to
// EFT-Min's (both start at t'_min,i). It exists for large-m workloads and as
// the ablation counterpart of the linear-scan EFT (see bench_test.go).
//
// Restricted tasks are rejected: with processing sets the tie set must be
// computed within M_i and the heap gives no advantage.
type EFTHeap struct {
	heap *eventq.MachineHeap
}

// NewEFTHeap returns a heap-indexed EFT-Min scheduler.
func NewEFTHeap() *EFTHeap { return &EFTHeap{} }

// Name implements Online.
func (e *EFTHeap) Name() string { return "EFT(heap)" }

// Reset implements Online.
func (e *EFTHeap) Reset(m int) { e.heap = eventq.NewMachineHeap(m) }

// Dispatch implements Online. It panics if the task carries a processing set
// restriction; use EFT for restricted instances.
func (e *EFTHeap) Dispatch(t core.Task) Decision {
	if t.Set != nil {
		panic("sched.EFTHeap: restricted task; use EFT")
	}
	j, c := e.heap.MinMachine()
	start := c
	if t.Release > start {
		start = t.Release
	}
	e.heap.Update(j, start+t.Proc)
	return Decision{Machine: j, Start: start}
}

// Run implements Algorithm.
func (e *EFTHeap) Run(inst *core.Instance) (*core.Schedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", e.Name(), err)
	}
	for _, t := range inst.Tasks {
		if t.Set != nil {
			return nil, fmt.Errorf("%s: task %d is restricted; use EFT", e.Name(), t.ID)
		}
	}
	return RunOnline(e, inst), nil
}
