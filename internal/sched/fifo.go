package sched

import (
	"fmt"

	"flowsched/internal/core"
	"flowsched/internal/eventq"
)

// FIFO is the centralized-queue scheduler of Algorithm 1: released tasks
// enter a global FIFO queue; whenever machines are idle and the queue is
// non-empty, the head task is pulled and executed by one idle machine,
// selected by the tie-break policy (nil means Min). FIFO is defined only
// without processing set restrictions (the paper notes extending it would be
// cumbersome); Run rejects restricted instances.
//
// Proposition 1 proves FIFO ≡ EFT on P|online-r_i|Fmax; the implementation
// here is a genuine event-driven central queue so the equivalence can be
// tested rather than assumed.
type FIFO struct {
	Tie TieBreak
}

// Name implements Algorithm.
func (f *FIFO) Name() string {
	if f.Tie == nil {
		return "FIFO-Min"
	}
	return "FIFO-" + f.Tie.Name()
}

// Run implements Algorithm.
func (f *FIFO) Run(inst *core.Instance) (*core.Schedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", f.Name(), err)
	}
	for _, t := range inst.Tasks {
		if t.Set != nil && !t.Set.Equal(core.Interval(0, inst.M-1)) {
			return nil, fmt.Errorf("%s: task %d has a processing set restriction %v; FIFO requires unrestricted tasks", f.Name(), t.ID, t.Set)
		}
	}
	tie := f.Tie
	if tie == nil {
		tie = MinTie{}
	}

	s := core.NewSchedule(inst)
	completion := make([]core.Time, inst.M)
	scratch := make([]int, 0, inst.M) // reused idle-set buffer: the dispatch loop allocates nothing

	// Event times at which the dispatcher wakes up: task releases and
	// machine completions. At each wake-up it pulls queue heads while some
	// machine is idle. Reserving 2n up front (n releases + at most n
	// completions) keeps the inner loop allocation-free.
	var events eventq.Queue[struct{}]
	events.Reserve(2 * inst.N())
	for _, t := range inst.Tasks {
		events.Push(t.Release, struct{}{})
	}

	next := 0 // index of the queue head among released tasks
	released := func(t core.Time) bool {
		return next < inst.N() && inst.Tasks[next].Release <= t
	}

	for events.Len() > 0 {
		now, _ := events.Pop()
		// Pull as many tasks as idle machines allow at this instant. The
		// selected machine "runs first", i.e. pulls are sequential.
		for released(now) {
			idle := idleMachinesInto(scratch, completion, now)
			if len(idle) == 0 {
				break
			}
			j := tie.Pick(idle)
			task := inst.Tasks[next]
			s.Assign(task.ID, j, now)
			completion[j] = now + task.Proc
			events.Push(completion[j], struct{}{})
			next++
		}
	}
	if next != inst.N() {
		return nil, fmt.Errorf("%s: internal error, %d tasks left unscheduled", f.Name(), inst.N()-next)
	}
	return s, nil
}

// idleMachinesInto appends the sorted indices of machines with no remaining
// work at time t into dst[:0] and returns the result. dst must have capacity
// for every machine so the append never reallocates.
func idleMachinesInto(dst []int, completion []core.Time, t core.Time) []int {
	idle := dst[:0]
	for j, c := range completion {
		if c <= t {
			idle = append(idle, j)
		}
	}
	return idle
}
