// Package sched implements the online scheduling algorithms of the paper:
// EFT (Earliest Finish Time, Algorithm 2) with the Min, Max and Rand
// tie-break policies of Algorithms 3-4, the centralized-queue FIFO scheduler
// (Algorithm 1), a heap-indexed EFT for the unrestricted case, and a
// non-clairvoyant join-shortest-queue baseline used as an extension.
package sched

import (
	"fmt"

	"flowsched/internal/core"
)

// Decision is an immediate-dispatch outcome: the machine μ_i and start time
// σ_i assigned to a task at its release.
type Decision struct {
	Machine int
	Start   core.Time
}

// Online is an immediate-dispatch online scheduler: each task is dispatched
// irrevocably at its release time, knowing only the tasks released so far.
// Dispatch must be called with tasks in non-decreasing release order.
type Online interface {
	Name() string
	Reset(m int)
	Dispatch(t core.Task) Decision
}

// Algorithm schedules a whole instance.
type Algorithm interface {
	Name() string
	Run(inst *core.Instance) (*core.Schedule, error)
}

// RunOnline feeds every task of the instance, in release order, to an
// immediate-dispatch scheduler and collects the resulting schedule.
func RunOnline(alg Online, inst *core.Instance) *core.Schedule {
	alg.Reset(inst.M)
	s := core.NewSchedule(inst)
	for i, t := range inst.Tasks {
		d := alg.Dispatch(t)
		s.Assign(i, d.Machine, d.Start)
	}
	return s
}

// onlineAlgorithm adapts an Online scheduler to the Algorithm interface.
type onlineAlgorithm struct{ o Online }

// AsAlgorithm wraps an immediate-dispatch scheduler as an Algorithm.
func AsAlgorithm(o Online) Algorithm { return onlineAlgorithm{o} }

func (a onlineAlgorithm) Name() string { return a.o.Name() }
func (a onlineAlgorithm) Run(inst *core.Instance) (*core.Schedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", a.o.Name(), err)
	}
	return RunOnline(a.o, inst), nil
}
