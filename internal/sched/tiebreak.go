package sched

import "math/rand"

// TieBreak selects one machine among the tie set U_i of machines that may
// finish a task at the earliest time (Equation (1)/(2) of the paper). The
// candidate slice is sorted by increasing machine index and never empty.
type TieBreak interface {
	Name() string
	Pick(candidates []int) int
}

// MinTie is the paper's Min policy: the candidate with the smallest index
// (EFT-Min, Algorithm 3).
type MinTie struct{}

// Name implements TieBreak.
func (MinTie) Name() string { return "Min" }

// Pick implements TieBreak.
func (MinTie) Pick(candidates []int) int { return candidates[0] }

// MaxTie selects the candidate with the largest index (EFT-Max,
// Section 7.4).
type MaxTie struct{}

// Name implements TieBreak.
func (MaxTie) Name() string { return "Max" }

// Pick implements TieBreak.
func (MaxTie) Pick(candidates []int) int { return candidates[len(candidates)-1] }

// RandTie selects a candidate uniformly at random (EFT-Rand, Algorithm 4).
// Every candidate has positive probability, as required by Theorem 9's class
// of randomized tie-breaks.
type RandTie struct{ Rng *rand.Rand }

// Name implements TieBreak.
func (RandTie) Name() string { return "Rand" }

// Pick implements TieBreak.
func (r RandTie) Pick(candidates []int) int {
	return candidates[r.Rng.Intn(len(candidates))]
}
