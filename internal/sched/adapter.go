package sched

import (
	"fmt"

	"flowsched/internal/core"
	"flowsched/internal/psets"
)

// PerSetAdapter is the Theorem 6 construction: given any scheduler for the
// unrestricted problem P|online-r_i|Fmax, it builds a scheduler for
// disjoint processing sets by running an independent copy of the inner
// algorithm on each block (each distinct processing set), with machine
// indices remapped into the block. If the inner algorithm is
// f(m)-competitive, the adapted algorithm is max_i f(|M_i|)-competitive.
//
// The instance's processing sets must form a disjoint family; Run rejects
// anything else. Unrestricted (nil-set) tasks form their own full-cluster
// block, which then must not intersect any restricted set.
type PerSetAdapter struct {
	// NewInner creates a fresh inner scheduler for a block of m machines.
	NewInner func() Online
	// InnerName labels the adapter ("per-set(<InnerName>)").
	InnerName string

	blocks []blockState
}

type blockState struct {
	set   core.ProcSet // block machines, sorted (global indices)
	inner Online
}

// NewPerSetAdapter wraps a constructor of unrestricted schedulers.
func NewPerSetAdapter(name string, newInner func() Online) *PerSetAdapter {
	return &PerSetAdapter{NewInner: newInner, InnerName: name}
}

// Name implements Online.
func (a *PerSetAdapter) Name() string { return fmt.Sprintf("per-set(%s)", a.InnerName) }

// Reset implements Online. Blocks are created lazily as their sets appear.
func (a *PerSetAdapter) Reset(m int) { a.blocks = nil }

// Dispatch implements Online. It panics if a task's set properly overlaps
// an earlier block (non-disjoint family) — Run validates first, so this
// only triggers on misuse of the raw Online interface.
func (a *PerSetAdapter) Dispatch(t core.Task) Decision {
	set := t.Set
	bi := -1
	for i := range a.blocks {
		if a.blocks[i].set.Equal(set) || (set == nil && a.blocks[i].set == nil) {
			bi = i
			break
		}
		if set.Intersects(a.blocks[i].set) {
			panic(fmt.Sprintf("sched.PerSetAdapter: set %v overlaps existing block %v", set, a.blocks[i].set))
		}
	}
	if bi == -1 {
		inner := a.NewInner()
		if set == nil {
			panic("sched.PerSetAdapter: unrestricted tasks need a resolved set; use Run")
		}
		inner.Reset(set.Len())
		a.blocks = append(a.blocks, blockState{set: set.Clone(), inner: inner})
		bi = len(a.blocks) - 1
	}
	b := &a.blocks[bi]
	// The inner scheduler sees local machine indices 0..|set|-1.
	local := b.inner.Dispatch(core.Task{
		ID:      t.ID,
		Release: t.Release,
		Proc:    t.Proc,
		Key:     t.Key,
	})
	return Decision{Machine: b.set[local.Machine], Start: local.Start}
}

// Run implements Algorithm, validating disjointness first and resolving
// unrestricted sets to the full cluster.
func (a *PerSetAdapter) Run(inst *core.Instance) (*core.Schedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name(), err)
	}
	fam := psets.FromInstance(inst)
	if !fam.IsDisjoint() {
		return nil, fmt.Errorf("%s: processing sets are not a disjoint family (Theorem 6 does not apply)", a.Name())
	}
	a.Reset(inst.M)
	s := core.NewSchedule(inst)
	for i, t := range inst.Tasks {
		t.Set = t.Set.Resolve(inst.M)
		d := a.Dispatch(t)
		s.Assign(i, d.Machine, d.Start)
	}
	return s, nil
}
