package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flowsched/internal/core"
)

// randomInstance draws a random unrestricted instance.
func randomInstance(rng *rand.Rand, m, n int) *core.Instance {
	tasks := make([]core.Task, n)
	t := 0.0
	for i := range tasks {
		t += rng.ExpFloat64()
		tasks[i] = core.Task{Release: t, Proc: 0.1 + rng.Float64()*3}
	}
	return core.NewInstance(m, tasks)
}

// randomRestrictedInstance draws a random instance with arbitrary processing
// sets.
func randomRestrictedInstance(rng *rand.Rand, m, n int) *core.Instance {
	tasks := make([]core.Task, n)
	t := 0.0
	for i := range tasks {
		t += rng.ExpFloat64()
		var ids []int
		for j := 0; j < m; j++ {
			if rng.Intn(2) == 0 {
				ids = append(ids, j)
			}
		}
		if len(ids) == 0 {
			ids = append(ids, rng.Intn(m))
		}
		tasks[i] = core.Task{Release: t, Proc: 0.1 + rng.Float64()*3, Set: core.NewProcSet(ids...)}
	}
	return core.NewInstance(m, tasks)
}

func TestEFTSimpleExample(t *testing.T) {
	// Two machines; three tasks at time 0 with p=2,2,1; then one at time 1.
	inst := core.NewInstance(2, []core.Task{
		{Release: 0, Proc: 2},
		{Release: 0, Proc: 2},
		{Release: 0, Proc: 1},
		{Release: 1, Proc: 1},
	})
	s, err := NewEFT(MinTie{}).Run(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// T0 -> M0@0, T1 -> M1@0, T2 -> M0@2 (tie 2,2 -> min), T3 -> M1@2.
	if s.Machine[0] != 0 || s.Machine[1] != 1 {
		t.Fatalf("first two assignments: %v", s.Machine)
	}
	if s.Machine[2] != 0 || s.Start[2] != 2 {
		t.Fatalf("T2 on M%d@%v, want M1@2", s.Machine[2]+1, s.Start[2])
	}
	if s.Machine[3] != 1 || s.Start[3] != 2 {
		t.Fatalf("T3 on M%d@%v, want M2@2", s.Machine[3]+1, s.Start[3])
	}
	if s.MaxFlow() != 3 {
		t.Fatalf("Fmax = %v, want 3", s.MaxFlow())
	}
}

func TestEFTTieSet(t *testing.T) {
	e := NewEFT(MinTie{})
	e.Reset(3)
	// Occupy machines: C = [5, 3, 3].
	e.completion = []core.Time{5, 3, 3}
	// Release at 0: tmin = max(0, 3) = 3 -> U = {1,2}.
	u := e.TieSet(0, nil)
	if len(u) != 2 || u[0] != 1 || u[1] != 2 {
		t.Fatalf("TieSet = %v, want [1 2]", u)
	}
	// Release at 10: all idle -> U = {0,1,2}.
	u = e.TieSet(10, nil)
	if len(u) != 3 {
		t.Fatalf("TieSet = %v, want all", u)
	}
	// Restricted to {0}: U = {0}.
	u = e.TieSet(0, core.NewProcSet(0))
	if len(u) != 1 || u[0] != 0 {
		t.Fatalf("TieSet = %v, want [0]", u)
	}
}

func TestEFTRespectsProcessingSets(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(8)
		inst := randomRestrictedInstance(rng, m, 40)
		for _, tie := range []TieBreak{MinTie{}, MaxTie{}, RandTie{Rng: rng}} {
			s, err := NewEFT(tie).Run(inst)
			if err != nil || s.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestProposition1 verifies FIFO(I) = EFT(I) on P|online-r_i|Fmax for the
// Min and Max tie-breaks and for Rand with a shared random stream.
func TestProposition1(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(6)
		inst := randomInstance(rng, m, 60)
		for _, mk := range []func() (Algorithm, Algorithm){
			func() (Algorithm, Algorithm) {
				return NewEFT(MinTie{}), &FIFO{Tie: MinTie{}}
			},
			func() (Algorithm, Algorithm) {
				return NewEFT(MaxTie{}), &FIFO{Tie: MaxTie{}}
			},
			func() (Algorithm, Algorithm) {
				return NewEFT(RandTie{Rng: rand.New(rand.NewSource(99))}),
					&FIFO{Tie: RandTie{Rng: rand.New(rand.NewSource(99))}}
			},
		} {
			eft, fifo := mk()
			se, err1 := eft.Run(inst)
			sf, err2 := fifo.Run(inst)
			if err1 != nil || err2 != nil {
				return false
			}
			for i := range inst.Tasks {
				if se.Machine[i] != sf.Machine[i] || se.Start[i] != sf.Start[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestProposition1WithTies stresses the equivalence on instances with many
// exact ties (integral releases and unit tasks).
func TestProposition1WithTies(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(5)
		tasks := make([]core.Task, 50)
		for i := range tasks {
			tasks[i] = core.Task{Release: float64(rng.Intn(10)), Proc: 1}
		}
		inst := core.NewInstance(m, tasks)
		se, err1 := NewEFT(MinTie{}).Run(inst)
		sf, err2 := (&FIFO{Tie: MinTie{}}).Run(inst)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range inst.Tasks {
			if se.Machine[i] != sf.Machine[i] || se.Start[i] != sf.Start[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestEFTHeapMatchesEFTMin checks that the heap variant produces exactly the
// start times (hence flows) of EFT-Min, and that its machine choice matches
// a linear-scan reference of the same "earliest completion, then smallest
// index" policy.
func TestEFTHeapMatchesEFTMin(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(10)
		inst := randomInstance(rng, m, 80)
		s1, err1 := NewEFT(MinTie{}).Run(inst)
		s2, err2 := NewEFTHeap().Run(inst)
		if err1 != nil || err2 != nil {
			return false
		}
		// Linear-scan reference of the heap policy.
		ref := make([]core.Time, inst.M)
		for i, task := range inst.Tasks {
			best := 0
			for j := 1; j < inst.M; j++ {
				if ref[j] < ref[best] {
					best = j
				}
			}
			start := ref[best]
			if task.Release > start {
				start = task.Release
			}
			if s2.Machine[i] != best || s2.Start[i] != start {
				return false
			}
			ref[best] = start + task.Proc
			// Start times must coincide with EFT-Min exactly.
			if s1.Start[i] != s2.Start[i] {
				return false
			}
		}
		return s1.MaxFlow() == s2.MaxFlow()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestFIFORejectsRestricted(t *testing.T) {
	inst := core.NewInstance(2, []core.Task{{Release: 0, Proc: 1, Set: core.NewProcSet(0)}})
	if _, err := (&FIFO{}).Run(inst); err == nil {
		t.Fatalf("FIFO should reject restricted instances")
	}
}

func TestFIFOAcceptsExplicitFullSet(t *testing.T) {
	inst := core.NewInstance(2, []core.Task{{Release: 0, Proc: 1, Set: core.Interval(0, 1)}})
	if _, err := (&FIFO{}).Run(inst); err != nil {
		t.Fatalf("full-interval set should be accepted: %v", err)
	}
}

func TestEFTHeapRejectsRestricted(t *testing.T) {
	inst := core.NewInstance(2, []core.Task{{Release: 0, Proc: 1, Set: core.NewProcSet(0)}})
	if _, err := NewEFTHeap().Run(inst); err == nil {
		t.Fatalf("EFTHeap should reject restricted instances")
	}
}

func TestJSQProducesValidSchedules(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(6)
		inst := randomRestrictedInstance(rng, m, 50)
		s, err := NewJSQ().Run(inst)
		return err == nil && s.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestJSQPrefersEmptyQueue(t *testing.T) {
	inst := core.NewInstance(2, []core.Task{
		{Release: 0, Proc: 10},
		{Release: 1, Proc: 1},
	})
	s, err := NewJSQ().Run(inst)
	if err != nil {
		t.Fatal(err)
	}
	if s.Machine[1] != 1 {
		t.Fatalf("second task should join the empty queue, got M%d", s.Machine[1]+1)
	}
}

func TestTieBreakNames(t *testing.T) {
	if (MinTie{}).Name() != "Min" || (MaxTie{}).Name() != "Max" || (RandTie{}).Name() != "Rand" {
		t.Fatalf("tie-break names wrong")
	}
	if NewEFT(nil).Name() != "EFT-Min" || NewEFT(MaxTie{}).Name() != "EFT-Max" {
		t.Fatalf("EFT names wrong")
	}
	if (&FIFO{}).Name() != "FIFO-Min" {
		t.Fatalf("FIFO name wrong")
	}
}

func TestRandTieCoversAllCandidates(t *testing.T) {
	r := RandTie{Rng: rand.New(rand.NewSource(1))}
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[r.Pick([]int{3, 5, 9})] = true
	}
	if !seen[3] || !seen[5] || !seen[9] {
		t.Fatalf("RandTie should give every candidate positive probability, saw %v", seen)
	}
}

// TestEFTWorkConserving checks that under EFT a machine is never left idle
// while a task it could run is waiting on it (immediate dispatch keeps
// per-machine queues busy).
func TestEFTWorkConserving(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := randomInstance(rng, 3, 60)
	s, err := NewEFT(MinTie{}).Run(inst)
	if err != nil {
		t.Fatal(err)
	}
	// On each machine, consecutive tasks either touch or the later one
	// starts exactly at its release (the gap is forced by releases).
	for _, ids := range s.MachineTasks() {
		for x := 1; x < len(ids); x++ {
			prev, cur := ids[x-1], ids[x]
			gap := s.Start[cur] - s.Completion(prev)
			if gap > 1e-9 && s.Start[cur] != inst.Tasks[cur].Release {
				t.Fatalf("machine idle from %v to %v with task %d dispatched later than release",
					s.Completion(prev), s.Start[cur], cur)
			}
		}
	}
}

func TestEFTStateAccessors(t *testing.T) {
	e := NewEFT(MinTie{})
	e.Reset(3)
	e.Dispatch(core.Task{Release: 0, Proc: 2})
	e.Dispatch(core.Task{Release: 0, Proc: 1})
	if e.Completion(0) != 2 || e.Completion(1) != 1 || e.Completion(2) != 0 {
		t.Fatalf("completions = %v", e.Completions())
	}
	cs := e.Completions()
	cs[0] = 99 // copies, not aliases
	if e.Completion(0) != 2 {
		t.Fatalf("Completions must return a copy")
	}
	w := e.WaitingWork(0.5)
	if w[0] != 1.5 || w[1] != 0.5 || w[2] != 0 {
		t.Fatalf("WaitingWork = %v", w)
	}
}

func TestRunRejectsInvalidInstances(t *testing.T) {
	bad := &core.Instance{M: 0}
	for _, alg := range []Algorithm{
		NewEFT(MinTie{}), NewEFTHeap(), NewJSQ(), &FIFO{},
		AsAlgorithm(NewEFT(MaxTie{})),
	} {
		if _, err := alg.Run(bad); err == nil {
			t.Errorf("%s accepted an invalid instance", alg.Name())
		}
	}
}

func TestAsAlgorithm(t *testing.T) {
	alg := AsAlgorithm(NewJSQ())
	if alg.Name() != "JSQ" {
		t.Fatalf("name = %q", alg.Name())
	}
	inst := core.NewInstance(2, []core.Task{{Release: 0, Proc: 1}})
	s, err := alg.Run(inst)
	if err != nil || s.Validate() != nil {
		t.Fatalf("AsAlgorithm run failed: %v", err)
	}
}

func TestMoreNames(t *testing.T) {
	if (&FIFO{Tie: MaxTie{}}).Name() != "FIFO-Max" {
		t.Fatalf("FIFO-Max name")
	}
	if NewJSQ().Name() != "JSQ" {
		t.Fatalf("JSQ name")
	}
	if NewEFTHeap().Name() != "EFT(heap)" {
		t.Fatalf("heap name")
	}
}

func TestEFTHeapDispatchPanicsOnRestricted(t *testing.T) {
	e := NewEFTHeap()
	e.Reset(2)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	e.Dispatch(core.Task{Release: 0, Proc: 1, Set: core.NewProcSet(0)})
}
