package sched

import (
	"math/rand"
	"reflect"
	"testing"

	"flowsched/internal/core"
	"flowsched/internal/eventq"
)

// seedFIFORun is the pre-optimization FIFO dispatch loop: a fresh idle
// slice per pull and an unreserved event queue. It is the oracle for the
// equivalence tests — the optimized Run must schedule byte-identically.
func seedFIFORun(tie TieBreak, inst *core.Instance) (*core.Schedule, error) {
	s := core.NewSchedule(inst)
	completion := make([]core.Time, inst.M)
	var events eventq.Queue[struct{}]
	for _, t := range inst.Tasks {
		events.Push(t.Release, struct{}{})
	}
	next := 0
	released := func(t core.Time) bool {
		return next < inst.N() && inst.Tasks[next].Release <= t
	}
	for events.Len() > 0 {
		now, _ := events.Pop()
		for released(now) {
			var idle []int
			for j, c := range completion {
				if c <= now {
					idle = append(idle, j)
				}
			}
			if len(idle) == 0 {
				break
			}
			j := tie.Pick(idle)
			task := inst.Tasks[next]
			s.Assign(task.ID, j, now)
			completion[j] = now + task.Proc
			events.Push(completion[j], struct{}{})
			next++
		}
	}
	return s, nil
}

func fifoInstance(m, n int, rng *rand.Rand) *core.Instance {
	tasks := make([]core.Task, n)
	tm := 0.0
	for i := range tasks {
		tm += rng.ExpFloat64() / float64(m)
		if rng.Intn(25) == 0 {
			tm += 10 // idle gaps: all machines drain
		}
		tasks[i] = core.Task{Release: tm, Proc: 0.2 + rng.Float64()*2}
	}
	return core.NewInstance(m, tasks)
}

// TestFIFOEquivalenceWithSeed pins the scratch-buffer FIFO loop to the
// seed implementation across tie-break policies.
func TestFIFOEquivalenceWithSeed(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst := fifoInstance(1+rng.Intn(8), 300, rng)
		for _, tie := range []TieBreak{MinTie{}, MaxTie{}} {
			got, err := (&FIFO{Tie: tie}).Run(inst)
			if err != nil {
				t.Fatal(err)
			}
			want, err := seedFIFORun(tie, inst)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Machine, want.Machine) || !reflect.DeepEqual(got.Start, want.Start) {
				t.Fatalf("seed %d, tie %s: optimized FIFO diverged from seed implementation", seed, tie.Name())
			}
		}
	}
}

// TestFIFOAllocsConstant asserts the dispatch inner loop allocates nothing:
// total allocations per Run stay far below one per task.
func TestFIFOAllocsConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inst := fifoInstance(8, 2000, rng)
	avg := testing.AllocsPerRun(5, func() {
		if _, err := (&FIFO{}).Run(inst); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 64 {
		t.Errorf("%v allocs per FIFO.Run of %d tasks: the dispatch loop allocates", avg, inst.N())
	}
}

// TestEFTAllocsConstant gives sched.EFT (the TieSet rewrite) the same
// guard.
func TestEFTAllocsConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inst := fifoInstance(8, 2000, rng)
	e := NewEFT(MinTie{})
	avg := testing.AllocsPerRun(5, func() {
		if _, err := e.Run(inst); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 64 {
		t.Errorf("%v allocs per EFT.Run of %d tasks: TieSet allocates", avg, inst.N())
	}
}
