package sched

import (
	"testing"

	"flowsched/internal/core"
)

// FuzzEFTDispatch decodes raw bytes into a small instance and checks that
// every scheduler produces a feasible schedule: EFT never assigns outside
// the processing set, before the release, or overlapping, no matter how the
// instance is shaped.
func FuzzEFTDispatch(f *testing.F) {
	f.Add([]byte{3, 5, 0, 1, 7, 2, 2, 9, 1, 4})
	f.Add([]byte{1, 1, 0, 0})
	f.Add([]byte{8, 200, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		m := 1 + int(data[0])%8
		n := int(data[1]) % 24
		data = data[2:]
		byteAt := func(i int) byte {
			if len(data) == 0 {
				return 0
			}
			return data[i%len(data)]
		}
		tasks := make([]core.Task, 0, n)
		for i := 0; i < n; i++ {
			release := float64(byteAt(3*i) % 16)
			proc := 0.25 * float64(1+byteAt(3*i+1)%16)
			var set core.ProcSet
			mask := byteAt(3*i + 2)
			if mask != 0 {
				var ids []int
				for j := 0; j < m && j < 8; j++ {
					if mask&(1<<uint(j)) != 0 {
						ids = append(ids, j)
					}
				}
				if len(ids) == 0 {
					ids = []int{int(mask) % m}
				}
				set = core.NewProcSet(ids...)
			}
			tasks = append(tasks, core.Task{Release: release, Proc: proc, Set: set})
		}
		inst := core.NewInstance(m, tasks)
		if err := inst.Validate(); err != nil {
			t.Fatalf("generated instance invalid: %v", err)
		}
		for _, alg := range []Algorithm{
			NewEFT(MinTie{}),
			NewEFT(MaxTie{}),
			NewJSQ(),
		} {
			s, err := alg.Run(inst)
			if err != nil {
				t.Fatalf("%s: %v", alg.Name(), err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("%s produced infeasible schedule: %v", alg.Name(), err)
			}
		}
	})
}
