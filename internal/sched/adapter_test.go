package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flowsched/internal/core"
)

// disjointInstance draws a random instance whose sets partition the
// machines into consecutive blocks of size k.
func disjointInstance(rng *rand.Rand, k, blocks, n int) *core.Instance {
	m := k * blocks
	tasks := make([]core.Task, n)
	t := 0.0
	for i := range tasks {
		t += rng.ExpFloat64()
		b := rng.Intn(blocks)
		tasks[i] = core.Task{
			Release: t,
			Proc:    0.2 + rng.Float64()*2,
			Set:     core.Interval(b*k, b*k+k-1),
		}
	}
	return core.NewInstance(m, tasks)
}

// TestTheorem6AdapterEqualsEFT: per Theorem 6 with EFT inside, the adapted
// algorithm is EXACTLY EFT restricted per block (EFT already treats blocks
// independently), so schedules must coincide.
func TestTheorem6AdapterEqualsEFT(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		blocks := 1 + rng.Intn(3)
		inst := disjointInstance(rng, k, blocks, 40)
		adapter := NewPerSetAdapter("EFT-Min", func() Online { return NewEFT(MinTie{}) })
		sa, err := adapter.Run(inst)
		if err != nil {
			return false
		}
		if sa.Validate() != nil {
			return false
		}
		se, err := NewEFT(MinTie{}).Run(inst)
		if err != nil {
			return false
		}
		for i := range inst.Tasks {
			if sa.Machine[i] != se.Machine[i] || sa.Start[i] != se.Start[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem6AdapterWithHeap: the adapter makes the heap-indexed EFT
// (which itself rejects restricted tasks) usable on disjoint instances.
func TestTheorem6AdapterWithHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := disjointInstance(rng, 3, 3, 60)
	adapter := NewPerSetAdapter("EFT(heap)", func() Online { return NewEFTHeap() })
	s, err := adapter.Run(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Start times coincide with EFT-Min per block (heap ≡ EFT-Min on
	// flows).
	ref, err := NewEFT(MinTie{}).Run(inst)
	if err != nil {
		t.Fatal(err)
	}
	for i := range inst.Tasks {
		if s.Start[i] != ref.Start[i] {
			t.Fatalf("task %d: start %v vs EFT %v", i, s.Start[i], ref.Start[i])
		}
	}
}

func TestAdapterRejectsOverlapping(t *testing.T) {
	inst := core.NewInstance(3, []core.Task{
		{Release: 0, Proc: 1, Set: core.Interval(0, 1)},
		{Release: 0, Proc: 1, Set: core.Interval(1, 2)},
	})
	adapter := NewPerSetAdapter("EFT-Min", func() Online { return NewEFT(MinTie{}) })
	if _, err := adapter.Run(inst); err == nil {
		t.Fatal("overlapping family accepted")
	}
}

func TestAdapterUnrestrictedBlock(t *testing.T) {
	// Unrestricted tasks resolve to the full cluster as one block.
	inst := core.NewInstance(3, []core.Task{
		{Release: 0, Proc: 1},
		{Release: 0, Proc: 1},
		{Release: 0, Proc: 1},
		{Release: 0, Proc: 1},
	})
	adapter := NewPerSetAdapter("EFT-Min", func() Online { return NewEFT(MinTie{}) })
	s, err := adapter.Run(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.MaxFlow() != 2 {
		t.Fatalf("Fmax = %v, want 2 (4 unit tasks on 3 machines)", s.MaxFlow())
	}
}

func TestAdapterName(t *testing.T) {
	adapter := NewPerSetAdapter("FIFO", func() Online { return NewEFT(nil) })
	if adapter.Name() != "per-set(FIFO)" {
		t.Fatalf("name = %q", adapter.Name())
	}
}
