package sched

import (
	"fmt"

	"flowsched/internal/core"
)

// EFT is the Earliest Finish Time immediate-dispatch scheduler (Algorithm 2):
// each released task T_i goes to the machine of its processing set M_i that
// can finish it the earliest, i.e. a machine of
//
//	U'_i = { M_j ∈ M_i : C_{j,i-1} ≤ t'_min,i },
//	t'_min,i = max(r_i, min_{M_j ∈ M_i} C_{j,i-1}),
//
// with ties broken by the configured TieBreak policy (Equation (2)).
// The zero value with a nil Tie uses EFT-Min. EFT is clairvoyant: it relies
// on exact processing times to maintain machine completion times.
type EFT struct {
	Tie TieBreak

	completion []core.Time
	candidates []int // scratch buffer for the tie set
}

// NewEFT returns an EFT scheduler with the given tie-break (nil means Min).
func NewEFT(tie TieBreak) *EFT { return &EFT{Tie: tie} }

// Name implements Online.
func (e *EFT) Name() string {
	if e.Tie == nil {
		return "EFT-Min"
	}
	return "EFT-" + e.Tie.Name()
}

// Reset implements Online.
func (e *EFT) Reset(m int) {
	e.completion = make([]core.Time, m)
	e.candidates = make([]int, 0, m)
}

// Completion returns machine j's current completion time C_{j,i-1}.
func (e *EFT) Completion(j int) core.Time { return e.completion[j] }

// Completions returns a copy of all machine completion times.
func (e *EFT) Completions() []core.Time {
	out := make([]core.Time, len(e.completion))
	copy(out, e.completion)
	return out
}

// WaitingWork returns w_t(j) = max(0, C_j - t) for every machine: the work
// allocated and not yet processed at time t (the paper's schedule profile).
func (e *EFT) WaitingWork(t core.Time) []core.Time {
	out := make([]core.Time, len(e.completion))
	for j, c := range e.completion {
		if c > t {
			out[j] = c - t
		}
	}
	return out
}

// TieSet returns the candidate machines U'_i for a task released at r with
// processing set set, i.e. the eligible machines whose completion time is at
// most t'_min = max(r, min over the set). The returned slice is valid until
// the next call; building it allocates nothing.
func (e *EFT) TieSet(r core.Time, set core.ProcSet) []int {
	m := len(e.completion)
	var tmin core.Time
	if set == nil {
		if m == 0 {
			return e.candidates[:0]
		}
		tmin = e.completion[0]
		for _, c := range e.completion[1:] {
			if c < tmin {
				tmin = c
			}
		}
	} else {
		if len(set) == 0 {
			return e.candidates[:0]
		}
		tmin = e.completion[set[0]]
		for _, j := range set[1:] {
			if c := e.completion[j]; c < tmin {
				tmin = c
			}
		}
	}
	if r > tmin {
		tmin = r
	}
	e.candidates = e.candidates[:0]
	if set == nil {
		for j := 0; j < m; j++ {
			if e.completion[j] <= tmin {
				e.candidates = append(e.candidates, j)
			}
		}
	} else {
		for _, j := range set {
			if e.completion[j] <= tmin {
				e.candidates = append(e.candidates, j)
			}
		}
	}
	return e.candidates
}

// Dispatch implements Online.
func (e *EFT) Dispatch(t core.Task) Decision {
	u := e.TieSet(t.Release, t.Set)
	tie := e.Tie
	if tie == nil {
		tie = MinTie{}
	}
	j := tie.Pick(u)
	start := e.completion[j]
	if t.Release > start {
		start = t.Release
	}
	e.completion[j] = start + t.Proc
	return Decision{Machine: j, Start: start}
}

// Run implements Algorithm.
func (e *EFT) Run(inst *core.Instance) (*core.Schedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", e.Name(), err)
	}
	return RunOnline(e, inst), nil
}
