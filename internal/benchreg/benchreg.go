// Package benchreg is the benchmark-regression harness behind cmd/bench
// and `make bench`. It runs a registered suite of named benchmarks with the
// standard testing machinery, serializes the results to a machine-readable
// BENCH_<n>.json report (schema documented in DESIGN.md §7), and compares
// a fresh run against the newest checked-in baseline with a configurable
// ns/op regression threshold.
package benchreg

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Schema identifies the report layout; bump when fields change meaning.
const Schema = "flowsched-bench/v1"

// DefaultThreshold is the relative ns/op slowdown tolerated before a
// comparison counts as a regression (15%).
const DefaultThreshold = 0.15

// Entry is one benchmark's measurement.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Host records where a report was produced; comparisons across different
// hosts are still reported but the threshold is only meaningful on the
// same hardware.
type Host struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	GoVersion string `json:"go_version"`
}

// Report is the top-level JSON document of a BENCH_<n>.json file.
type Report struct {
	Schema    string  `json:"schema"`
	CreatedAt string  `json:"created_at"` // RFC 3339
	Host      Host    `json:"host"`
	Entries   []Entry `json:"entries"`
}

// NewReport wraps entries in a report stamped with the current host and
// time.
func NewReport(entries []Entry) *Report {
	return &Report{
		Schema:    Schema,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		Host: Host{
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
			GoVersion: runtime.Version(),
		},
		Entries: entries,
	}
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a report and checks its schema tag.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchreg: %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("benchreg: %s: unknown schema %q (want %q)", path, r.Schema, Schema)
	}
	return &r, nil
}

// baselineIndex extracts n from a BENCH_<n>.json basename, or -1.
func baselineIndex(name string) int {
	if !strings.HasPrefix(name, "BENCH_") || !strings.HasSuffix(name, ".json") {
		return -1
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "BENCH_"), ".json"))
	if err != nil || n < 0 {
		return -1
	}
	return n
}

// LatestBaseline returns the path of the BENCH_<n>.json file with the
// highest n in dir, or "" if none exists.
func LatestBaseline(dir string) (string, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestIdx := "", -1
	for _, e := range names {
		if e.IsDir() {
			continue
		}
		if n := baselineIndex(e.Name()); n > bestIdx {
			best, bestIdx = e.Name(), n
		}
	}
	if bestIdx < 0 {
		return "", nil
	}
	return filepath.Join(dir, best), nil
}

// NextPath returns the path a new baseline should be written to: one past
// the highest existing index (BENCH_1.json when dir has none).
func NextPath(dir string) (string, error) {
	latest, err := LatestBaseline(dir)
	if err != nil {
		return "", err
	}
	idx := 0
	if latest != "" {
		idx = baselineIndex(filepath.Base(latest))
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", idx+1)), nil
}

// Delta is one benchmark's baseline-vs-current comparison.
type Delta struct {
	Name    string
	BaseNs  float64
	CurNs   float64
	Ratio   float64 // CurNs / BaseNs
	Regress bool    // Ratio > 1 + threshold
}

// Compare matches current entries against the baseline by name and flags
// every entry whose ns/op grew by more than the threshold (≤ 0 means
// DefaultThreshold). Entries present on only one side are skipped: new
// benchmarks have no baseline and deleted ones no measurement.
func Compare(base, cur *Report, threshold float64) []Delta {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	baseline := make(map[string]Entry, len(base.Entries))
	for _, e := range base.Entries {
		baseline[e.Name] = e
	}
	var deltas []Delta
	for _, e := range cur.Entries {
		b, ok := baseline[e.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		ratio := e.NsPerOp / b.NsPerOp
		deltas = append(deltas, Delta{
			Name:    e.Name,
			BaseNs:  b.NsPerOp,
			CurNs:   e.NsPerOp,
			Ratio:   ratio,
			Regress: ratio > 1+threshold,
		})
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas
}

// Regressions filters a comparison down to the regressed entries.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regress {
			out = append(out, d)
		}
	}
	return out
}
