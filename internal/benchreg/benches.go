package benchreg

import (
	"math/rand"
	"testing"

	"flowsched/internal/audit"
	"flowsched/internal/core"
	"flowsched/internal/elastic"
	"flowsched/internal/eventq"
	"flowsched/internal/faults"
	"flowsched/internal/hedge"
	"flowsched/internal/obs"
	"flowsched/internal/overload"
	"flowsched/internal/popularity"
	"flowsched/internal/replicate"
	"flowsched/internal/resilience"
	"flowsched/internal/sched"
	"flowsched/internal/sim"
	"flowsched/internal/stats"
	"flowsched/internal/workload"
)

// The registered suite: the simulator hot paths (router Pick, Run variants,
// FIFO dispatch) plus the supporting stats and eventq kernels. Every entry
// lands in BENCH_<n>.json; the Pick entries are additionally pinned to
// 0 allocs/op by TestRouterPickAllocs in internal/sim.

func init() {
	Register("RouterEFTPick", benchRouterEFTPick)
	Register("RouterEFTPickFullSet", benchRouterEFTPickFullSet)
	Register("RouterJSQPick", benchRouterJSQPick)
	Register("SimRunEFT", benchSimRunEFT)
	Register("SimRunEFTMinFullSet", benchSimRunEFTMinFullSet)
	Register("SimRunJSQ", benchSimRunJSQ)
	Register("ProbeOverheadSimOff", benchProbeOverheadSimOff)
	Register("ProbeOverheadSimHist", benchProbeOverheadSimHist)
	Register("TracerOverheadSimOff", benchTracerOverheadSimOff)
	Register("SimRunTracedKeepWorst", benchSimRunTracedKeepWorst)
	Register("SimRunFaulty", benchSimRunFaulty)
	Register("SimRunFaultySlowNoop", benchSimRunFaultySlowNoop)
	Register("SimRunFaultyGray", benchSimRunFaultyGray)
	Register("SimRunGuardedOff", benchSimRunGuardedOff)
	Register("SimRunGuardedAdmit", benchSimRunGuardedAdmit)
	Register("SimRunElasticOff", benchSimRunElasticOff)
	Register("SimRunElasticScale", benchSimRunElasticScale)
	Register("SimRunHedgedOff", benchSimRunHedgedOff)
	Register("SimRunHedgedGray", benchSimRunHedgedGray)
	Register("SimRunResilientOff", benchSimRunResilientOff)
	Register("SimRunResilientStorm", benchSimRunResilientStorm)
	Register("SimRunFaultySteady", benchSimRunFaultySteady)
	Register("SimRunGuardedOffSteady", benchSimRunGuardedOffSteady)
	Register("SimRunGuardedAdmitSteady", benchSimRunGuardedAdmitSteady)
	Register("SimRunElasticOffSteady", benchSimRunElasticOffSteady)
	Register("OutlierEject", benchOutlierEject)
	Register("AuditSchedule", benchAuditSchedule)
	Register("SchedEFTRun", benchSchedEFTRun)
	Register("SchedFIFORun", benchSchedFIFORun)
	Register("StatsSummarize", benchStatsSummarize)
	Register("EventqEFTMinDispatch", benchEventqEFTMinDispatch)
}

// pickTasks builds a ring of release-ordered tasks with interval processing
// sets of size k on m machines (nil sets when k <= 0).
func pickTasks(m, k, n int) []core.Task {
	tasks := make([]core.Task, n)
	tm := 0.0
	for i := range tasks {
		tm += 0.07
		tasks[i] = core.Task{ID: i, Release: tm, Proc: 1}
		if k > 0 {
			lo := i % (m - k + 1)
			tasks[i].Set = core.Interval(lo, lo+k-1)
		}
	}
	return tasks
}

func pickState(m int) *sim.State {
	st := &sim.State{M: m, Completion: make([]core.Time, m), QueueLen: make([]int, m)}
	rng := rand.New(rand.NewSource(1))
	for j := 0; j < m; j++ {
		st.Completion[j] = core.Time(rng.Float64() * 10)
		st.QueueLen[j] = rng.Intn(4)
	}
	return st
}

// benchPick drives one router Pick per iteration, advancing the picked
// server's clock so the candidate structure keeps changing.
func benchPick(b *testing.B, router sim.Router, m, k int) {
	tasks := pickTasks(m, k, 1024)
	st := pickState(m)
	router.Pick(st, tasks[0]) // warm the scratch buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := tasks[i%len(tasks)]
		j := router.Pick(st, t)
		st.Completion[j] += t.Proc
		st.QueueLen[j]++
		st.QueueLen[(j+1)%m] = 0
	}
}

func benchRouterEFTPick(b *testing.B)        { benchPick(b, sim.EFTRouter{}, 15, 3) }
func benchRouterEFTPickFullSet(b *testing.B) { benchPick(b, sim.EFTRouter{}, 256, 0) }
func benchRouterJSQPick(b *testing.B)        { benchPick(b, sim.JSQRouter{}, 15, 3) }

// restrictedInstance is the paper-shaped workload (Zipf popularity,
// overlapping replication) at reduced size.
func restrictedInstance(m, k, n int) *core.Instance {
	rng := rand.New(rand.NewSource(7))
	inst, err := workload.Generate(workload.Config{
		M: m, N: n, Rate: 0.8 * float64(m),
		Weights:  popularity.Weights(popularity.Shuffled, m, 1, rng),
		Strategy: replicate.Overlapping{K: k},
	}, rng)
	if err != nil {
		panic(err)
	}
	return inst
}

// fullSetInstance has nil processing sets: the EFT-Min fast-path shape.
func fullSetInstance(m, n int) *core.Instance {
	rng := rand.New(rand.NewSource(7))
	tasks := make([]core.Task, n)
	tm := 0.0
	for i := range tasks {
		tm += rng.ExpFloat64() / (0.9 * float64(m))
		tasks[i] = core.Task{Release: tm, Proc: 1}
	}
	return core.NewInstance(m, tasks)
}

func benchSimRun(b *testing.B, inst *core.Instance, router sim.Router) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sim.Run(inst, router); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSimRunEFT(b *testing.B) {
	benchSimRun(b, restrictedInstance(15, 3, 5000), sim.EFTRouter{})
}

func benchSimRunEFTMinFullSet(b *testing.B) {
	benchSimRun(b, fullSetInstance(256, 5000), sim.EFTRouter{})
}

func benchSimRunJSQ(b *testing.B) {
	benchSimRun(b, restrictedInstance(15, 3, 5000), sim.JSQRouter{})
}

// The probe-overhead pair brackets the observability cost on the same
// workload as SimRunEFT: Off drives RunProbed with a nil probe (must match
// SimRunEFT — the disabled path is pure branch-not-taken, 0 extra allocs),
// Hist attaches the streaming flow/stretch histogram probe.
func benchProbeOverhead(b *testing.B, probe obs.Probe) {
	inst := restrictedInstance(15, 3, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sim.RunProbed(inst, sim.EFTRouter{}, probe); err != nil {
			b.Fatal(err)
		}
	}
}

func benchProbeOverheadSimOff(b *testing.B) { benchProbeOverhead(b, nil) }

func benchProbeOverheadSimHist(b *testing.B) {
	benchProbeOverhead(b, obs.NewHistogramProbe())
}

// The tracer pair brackets the span-tracing cost on the SimRunEFT workload:
// Off is the tracing-disabled baseline (nil probe — must match SimRunEFT,
// same branch-not-taken argument as ProbeOverheadSimOff), KeepWorst attaches
// a bounded tail tracer. A fresh tracer per iteration is the real usage
// shape: retention state is per run, not reusable.
func benchTracerOverheadSimOff(b *testing.B) { benchProbeOverhead(b, nil) }

func benchSimRunTracedKeepWorst(b *testing.B) {
	inst := restrictedInstance(15, 3, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tracer := obs.NewTracer(obs.KeepWorst(20))
		if _, _, err := sim.RunProbed(inst, sim.EFTRouter{}, tracer); err != nil {
			b.Fatal(err)
		}
	}
}

// The faulty-simulation trio brackets the gray-failure cost on the same
// workload: SimRunFaulty is the crash-free healthy path, SlowNoop adds a
// plan whose slowdown segments all have Factor 1 (the no-op normalization
// must make it indistinguishable from SimRunFaulty), and Gray degrades a
// third of the servers to quarter speed for most of the horizon.
func benchSimRunFaultyPlan(b *testing.B, plan *faults.Plan) {
	inst := restrictedInstance(15, 3, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sim.RunFaulty(inst, sim.EFTRouter{}, plan, sim.RetryPolicy{}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSimRunFaulty(b *testing.B) { benchSimRunFaultyPlan(b, faults.Empty(15)) }

func benchSimRunFaultySlowNoop(b *testing.B) {
	plan := faults.Empty(15)
	for j := 0; j < 15; j++ {
		plan.Slow(j, 0, 1e6, 1)
	}
	benchSimRunFaultyPlan(b, plan)
}

func benchSimRunFaultyGray(b *testing.B) {
	plan := faults.Empty(15)
	for j := 0; j < 15; j += 3 {
		plan.Slow(j, 10, 1e6, 4)
	}
	benchSimRunFaultyPlan(b, plan)
}

// benchSimRunGuardedOff pins the disabled-path cost of the overload
// subsystem: RunGuarded with a nil config must track SimRunFaulty (the
// byte-identical property in internal/sim pins the behavior; this entry
// pins the speed).
func benchSimRunGuardedOff(b *testing.B) {
	inst := restrictedInstance(15, 3, 5000)
	plan := faults.Empty(15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sim.RunGuarded(inst, sim.EFTRouter{}, plan, sim.RetryPolicy{}, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSimRunGuardedAdmit measures a fully armed overload config (deadline
// admission + stretch shedding + ejection) on the same workload.
func benchSimRunGuardedAdmit(b *testing.B) {
	inst := restrictedInstance(15, 3, 5000)
	plan := faults.Empty(15)
	cfg := &overload.Config{
		Admission: overload.DeadlineAdmit{D: 20},
		Shedder:   &overload.Shedder{Policy: overload.DropLargestStretch, Watermark: 15},
		Ejector:   &overload.Ejector{},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sim.RunGuarded(inst, sim.EFTRouter{}, plan, sim.RetryPolicy{}, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSimRunElasticOff pins the disabled-path cost of the elastic layer:
// RunElastic with a nil membership config must track SimRunGuardedOff (the
// byte-identical property in internal/sim pins the behavior, the 0-extra-alloc
// test pins the footprint; this entry pins the speed).
func benchSimRunElasticOff(b *testing.B) {
	inst := restrictedInstance(15, 3, 5000)
	plan := faults.Empty(15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sim.RunElastic(inst, sim.EFTRouter{}, plan, sim.RetryPolicy{}, nil, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSimRunElasticScale measures a churning membership on the same
// workload: start at 9 of 15 slots, drain to 6, grow back to 12 (with
// warm-up) and settle at 9, exercising the join, drain-handoff and
// effective-set remap paths.
func benchSimRunElasticScale(b *testing.B) {
	inst := restrictedInstance(15, 3, 5000)
	plan := faults.Empty(15)
	horizon := float64(inst.N()) / (0.8 * 15)
	ecfg := &elastic.Config{
		Initial: 9, Min: 6, Max: 15, WarmUp: 0.5,
		Script: []elastic.Event{
			{At: core.Time(horizon * 0.2), Delta: -3},
			{At: core.Time(horizon * 0.5), Delta: 6},
			{At: core.Time(horizon * 0.8), Delta: -3},
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sim.RunElastic(inst, sim.EFTRouter{}, plan, sim.RetryPolicy{}, nil, ecfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSimRunHedgedOff pins the disabled-path cost of the hedging layer:
// RunHedged with a nil hedge config must track SimRunElasticOff (the
// byte-identical property in internal/sim pins the behavior, the
// 0-extra-alloc test pins the footprint; this entry pins the speed).
func benchSimRunHedgedOff(b *testing.B) {
	inst := restrictedInstance(15, 3, 5000)
	plan := faults.Empty(15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sim.RunHedged(inst, sim.EFTRouter{}, plan, sim.RetryPolicy{}, nil, nil, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSimRunHedgedGray measures hedging under fire: a third of the cluster
// runs 4× slow behind a blind round-robin router, and a delay-triggered
// hedge with cancel-mid-service races copies onto the healthy replicas —
// the copy-id bookkeeping, cancellation and duplicate-work accounting all
// on the hot path. The queue-bound admission mirrors the headline hedge
// experiment and keeps the cancellation re-time cost bounded: cancelling a
// queue entry re-times the suffix behind it (DESIGN.md §13), so hedging
// against unbounded queues scales with their length, not with this
// machinery.
func benchSimRunHedgedGray(b *testing.B) {
	inst := restrictedInstance(15, 3, 5000)
	plan := faults.Empty(15)
	for j := 0; j < 15; j += 3 {
		plan.Slow(j, 10, 1e6, 4)
	}
	cfg := &overload.Config{Admission: overload.QueueBound{MaxQueue: 20}}
	hcfg := &hedge.Config{Delay: 5, CancelRunning: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sim.RunHedged(inst, &sim.RoundRobinRouter{}, plan, sim.RetryPolicy{}, cfg, nil, hcfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSimRunResilientOff pins the disabled-path cost of the resilience
// layer: RunResilient with a nil config must track SimRunHedgedOff (the
// byte-identical property in internal/sim pins the behavior, the
// 0-extra-alloc test pins the footprint; this entry pins the speed).
func benchSimRunResilientOff(b *testing.B) {
	inst := restrictedInstance(15, 3, 5000)
	plan := faults.Empty(15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sim.RunResilient(inst, sim.EFTRouter{}, plan, sim.RetryPolicy{}, nil, nil, nil, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSimRunResilientStorm measures the resilience layer under fire: a
// third of the cluster flaps through the middle of the horizon while the
// full protection stack is armed — jittered backoff draws on every retry,
// budget refills/takes on every dispatch, and breaker observe/trip/probe
// cycles on the flapping servers. This is the metastable-experiment shape
// (cmd/experiments metastable) at benchmark size.
func benchSimRunResilientStorm(b *testing.B) {
	inst := restrictedInstance(15, 3, 5000)
	plan := faults.Empty(15)
	for j := 0; j < 15; j += 3 {
		for f := 0; f < 10; f++ {
			from := core.Time(20 + 15*f)
			plan.Down(j, from, from+9)
		}
	}
	pol := sim.RetryPolicy{Backoff: 2, BackoffFactor: 2}
	rcfg := &resilience.Config{
		Jitter: resilience.JitterFull, Seed: 1,
		RetryBudget: 0.1, BudgetBurst: 3,
		Breaker: &resilience.BreakerConfig{
			Window: 5, FailureThreshold: 0.6, Cooldown: 15, HalfOpenProbes: 2,
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sim.RunResilient(inst, sim.EFTRouter{}, plan, pol, nil, nil, nil, rcfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// The Steady quartet re-runs the four robustness paths through a single
// reused sim.Arena — the steady-state shape of chaos soaks, experiment
// repetition loops and cmd/bench itself. Against their fresh-run twins they
// price the per-run allocation tax the arena removes; the companion alloc
// ceilings (≤ 50, admit ≤ 100) are pinned by TestRun*Allocs in internal/sim.
func benchSimRunFaultySteady(b *testing.B) {
	inst := restrictedInstance(15, 3, 5000)
	plan := faults.Empty(15)
	arena := sim.NewArena()
	if _, _, err := arena.RunFaulty(inst, sim.EFTRouter{}, plan, sim.RetryPolicy{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := arena.RunFaulty(inst, sim.EFTRouter{}, plan, sim.RetryPolicy{}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSimRunGuardedOffSteady(b *testing.B) {
	inst := restrictedInstance(15, 3, 5000)
	plan := faults.Empty(15)
	arena := sim.NewArena()
	if _, _, err := arena.RunGuarded(inst, sim.EFTRouter{}, plan, sim.RetryPolicy{}, nil, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := arena.RunGuarded(inst, sim.EFTRouter{}, plan, sim.RetryPolicy{}, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSimRunGuardedAdmitSteady(b *testing.B) {
	inst := restrictedInstance(15, 3, 5000)
	plan := faults.Empty(15)
	cfg := &overload.Config{
		Admission: overload.DeadlineAdmit{D: 20},
		Shedder:   &overload.Shedder{Policy: overload.DropLargestStretch, Watermark: 15},
		Ejector:   &overload.Ejector{},
	}
	arena := sim.NewArena()
	if _, _, err := arena.RunGuarded(inst, sim.EFTRouter{}, plan, sim.RetryPolicy{}, cfg, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := arena.RunGuarded(inst, sim.EFTRouter{}, plan, sim.RetryPolicy{}, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSimRunElasticOffSteady(b *testing.B) {
	inst := restrictedInstance(15, 3, 5000)
	plan := faults.Empty(15)
	arena := sim.NewArena()
	if _, _, err := arena.RunElastic(inst, sim.EFTRouter{}, plan, sim.RetryPolicy{}, nil, nil, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := arena.RunElastic(inst, sim.EFTRouter{}, plan, sim.RetryPolicy{}, nil, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchOutlierEject measures the ejector kernel alone: one Observe per
// completion on a 15-server cluster with one chronically slow server, plus
// the periodic Readmit sweep.
func benchOutlierEject(b *testing.B) {
	e := &overload.Ejector{K: 3, Cooldown: 50, MinSamples: 5}
	cfg := &overload.Config{Ejector: e}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Reset(15)
		now := core.Time(0)
		for t := 0; t < 2000; t++ {
			now += 0.1
			j := t % 15
			factor := 1.0
			if j == 0 {
				factor = 6
			}
			e.Observe(j, factor, now)
			if t%64 == 0 {
				e.Readmit(now, nil)
			}
		}
	}
}

// benchAuditSchedule pins the invariant auditor's overhead on a
// paper-shaped 1000-task schedule (restricted sets, so the FIFO-equivalence
// spot-check is skipped by shape). The certified lower-bound scan is
// O(n²·sets) and dominates; n is kept at 1000 — chaos trials audit at most
// a few hundred tasks — so the suite stays fast while regressions in the
// per-task invariant checks still register.
func benchAuditSchedule(b *testing.B) {
	inst := restrictedInstance(15, 3, 1000)
	s, _, err := sim.Run(inst, sim.EFTRouter{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := audit.Audit(inst, s, audit.Options{}); !rep.Ok() {
			b.Fatal(rep)
		}
	}
}

func benchSchedEFTRun(b *testing.B) {
	inst := restrictedInstance(15, 3, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.NewEFT(sched.MinTie{}).Run(inst); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSchedFIFORun(b *testing.B) {
	inst := fullSetInstance(64, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&sched.FIFO{}).Run(inst); err != nil {
			b.Fatal(err)
		}
	}
}

func benchStatsSummarize(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := stats.Summarize(xs); s.N != len(xs) {
			b.Fatal("bad summary")
		}
	}
}

func benchEventqEFTMinDispatch(b *testing.B) {
	const m = 256
	picker := eventq.NewEFTMinPicker(m)
	b.ReportAllocs()
	b.ResetTimer()
	release := 0.0
	for i := 0; i < b.N; i++ {
		release += 1.0 / m
		picker.Dispatch(release, 1)
	}
}
