package benchreg

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rep := NewReport([]Entry{
		{Name: "A", Iterations: 100, NsPerOp: 123.4, BytesPerOp: 8, AllocsPerOp: 1},
		{Name: "B", Iterations: 10, NsPerOp: 5000, BytesPerOp: 0, AllocsPerOp: 0},
	})
	path := filepath.Join(dir, "BENCH_1.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || len(got.Entries) != 2 || got.Entries[0] != rep.Entries[0] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Host.GoVersion == "" || got.CreatedAt == "" {
		t.Fatalf("missing host/time metadata: %+v", got)
	}
}

func TestReadFileRejectsUnknownSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_1.json")
	if err := os.WriteFile(path, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("unknown schema should be rejected")
	}
}

func TestLatestBaselineAndNextPath(t *testing.T) {
	dir := t.TempDir()
	latest, err := LatestBaseline(dir)
	if err != nil || latest != "" {
		t.Fatalf("empty dir: latest=%q err=%v", latest, err)
	}
	next, err := NextPath(dir)
	if err != nil || filepath.Base(next) != "BENCH_1.json" {
		t.Fatalf("empty dir: next=%q err=%v", next, err)
	}
	// Numeric ordering, not lexicographic: 10 > 9 > 2.
	for _, name := range []string{"BENCH_2.json", "BENCH_10.json", "BENCH_9.json", "BENCH_x.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	latest, err = LatestBaseline(dir)
	if err != nil || filepath.Base(latest) != "BENCH_10.json" {
		t.Fatalf("latest=%q err=%v", latest, err)
	}
	next, err = NextPath(dir)
	if err != nil || filepath.Base(next) != "BENCH_11.json" {
		t.Fatalf("next=%q err=%v", next, err)
	}
}

func TestCompare(t *testing.T) {
	base := &Report{Schema: Schema, Entries: []Entry{
		{Name: "fast", NsPerOp: 100},
		{Name: "slow", NsPerOp: 1000},
		{Name: "gone", NsPerOp: 42},
	}}
	cur := &Report{Schema: Schema, Entries: []Entry{
		{Name: "fast", NsPerOp: 110},  // +10%: within the 15% default
		{Name: "slow", NsPerOp: 1200}, // +20%: regression
		{Name: "new", NsPerOp: 7},     // no baseline: skipped
	}}
	deltas := Compare(base, cur, 0) // 0 → DefaultThreshold
	if len(deltas) != 2 {
		t.Fatalf("want 2 comparable deltas, got %+v", deltas)
	}
	reg := Regressions(deltas)
	if len(reg) != 1 || reg[0].Name != "slow" {
		t.Fatalf("want one regression (slow), got %+v", reg)
	}
	// A tighter threshold flags both.
	if got := Regressions(Compare(base, cur, 0.05)); len(got) != 2 {
		t.Fatalf("5%% threshold should flag both, got %+v", got)
	}
	// A looser one flags none.
	if got := Regressions(Compare(base, cur, 0.5)); len(got) != 0 {
		t.Fatalf("50%% threshold should flag none, got %+v", got)
	}
}

// TestSuiteRuns smoke-tests the registered suite end to end with the
// shortest possible measurement (one iteration per benchmark).
func TestSuiteRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every registered benchmark")
	}
	if err := flag.Set("test.benchtime", "1x"); err != nil {
		t.Fatal(err)
	}
	defer flag.Set("test.benchtime", "1s")
	var ran []string
	entries, err := RunMatching("", func(name string) { ran = append(ran, name) })
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 8 {
		t.Fatalf("suite has %d entries, want >= 8 (ISSUE acceptance)", len(entries))
	}
	if len(ran) != len(entries) {
		t.Fatalf("progress calls %d != entries %d", len(ran), len(entries))
	}
	for _, e := range entries {
		if e.Iterations < 1 || e.NsPerOp <= 0 {
			t.Errorf("%s: implausible measurement %+v", e.Name, e)
		}
	}
	// Pattern filtering.
	routers, err := RunMatching("^Router", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(routers) != 3 {
		t.Fatalf("want 3 Router benches, got %+v", routers)
	}
	if _, err := RunMatching("(", nil); err == nil {
		t.Fatal("bad pattern should error")
	}
}
