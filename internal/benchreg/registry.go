package benchreg

import (
	"fmt"
	"regexp"
	"sort"
	"testing"
)

// registry maps benchmark names to their bodies. Registration happens in
// this package's init (benches.go) so cmd/bench and tests see one suite.
var registry = map[string]func(b *testing.B){}

// Register adds a named benchmark to the suite. Duplicate names panic:
// they would silently shadow a measurement.
func Register(name string, fn func(b *testing.B)) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("benchreg: duplicate benchmark %q", name))
	}
	registry[name] = fn
}

// Get returns the registered benchmark body, or nil. bench_test.go wraps
// the suite through it so `go test -bench` and cmd/bench measure the same
// code.
func Get(name string) func(b *testing.B) { return registry[name] }

// Names returns the registered benchmark names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// RunMatching runs every registered benchmark whose name matches the
// pattern ("" = all) via testing.Benchmark and returns one Entry per
// benchmark, sorted by name. The caller controls the measurement length
// through the standard -test.benchtime flag (see cmd/bench).
func RunMatching(pattern string, progress func(name string)) ([]Entry, error) {
	var re *regexp.Regexp
	if pattern != "" {
		var err error
		if re, err = regexp.Compile(pattern); err != nil {
			return nil, fmt.Errorf("benchreg: bad pattern %q: %w", pattern, err)
		}
	}
	var entries []Entry
	for _, name := range Names() {
		if re != nil && !re.MatchString(name) {
			continue
		}
		if progress != nil {
			progress(name)
		}
		res := testing.Benchmark(registry[name])
		entries = append(entries, Entry{
			Name:        name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		})
	}
	return entries, nil
}
