package resilience

import (
	"math"

	"flowsched/internal/core"
)

// State is a circuit breaker's position.
type State uint8

const (
	// Closed passes all traffic while recording outcomes in the sliding
	// window.
	Closed State = iota
	// Open blocks all dispatches until the cooldown elapses.
	Open
	// HalfOpen admits up to the probe cap of concurrently outstanding
	// probe dispatches; a probe success closes the breaker, a probe
	// failure re-opens it.
	HalfOpen
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "invalid"
}

// Span is one open episode of a breaker, recorded for the auditor: the
// breaker opened at OpenedAt, went half-open at HalfOpenAt (NaN if the run
// ended first) and ended at EndedAt (NaN if still open or half-open at the
// end of the run) — by a probe success when Closed is true, by a probe
// failure re-opening it (a new Span follows) when false.
type Span struct {
	Server     int       `json:"server"`
	OpenedAt   core.Time `json:"opened_at"`
	HalfOpenAt core.Time `json:"half_open_at"`
	EndedAt    core.Time `json:"ended_at"`
	Closed     bool      `json:"closed"`
}

// Breakers is the per-server circuit breaker bank of one engine run. All
// state lives in flat reusable slices (the outcome rings share one backing
// array), so a Reset between runs allocates only when the cluster grew —
// the same arena discipline as the engine itself.
//
// Transitions are explicit and deterministic: Observe/ObserveProbe move
// closed→open and half-open→{closed,open}; the timed open→half-open
// transition happens only in Tick, which the engine drives from a
// cooldown-expiry event, so the observable state stream is a pure function
// of the event sequence.
type Breakers struct {
	cfg *BreakerConfig

	state    []State
	openedAt []core.Time
	ring     []bool // m × Window outcome ring (true = failure)
	count    []int  // outcomes recorded on the server (saturates at Window)
	fails    []int  // failures currently in the server's ring
	pos      []int  // next ring write position
	issued   []int  // probes issued this half-open episode
	inflight []int  // probes currently outstanding
}

// Reset arms the bank for m servers, recycling every buffer.
func (b *Breakers) Reset(cfg *BreakerConfig, m int) {
	b.cfg = cfg
	b.state = resliceZero(b.state, m)
	b.openedAt = resliceZero(b.openedAt, m)
	b.ring = resliceZero(b.ring, m*cfg.Window)
	b.count = resliceZero(b.count, m)
	b.fails = resliceZero(b.fails, m)
	b.pos = resliceZero(b.pos, m)
	b.issued = resliceZero(b.issued, m)
	b.inflight = resliceZero(b.inflight, m)
}

// State returns server j's current position.
func (b *Breakers) State(j int) State { return b.state[j] }

// OpenUntil returns when server j's open breaker is due to go half-open
// (meaningful only in the Open state).
func (b *Breakers) OpenUntil(j int) core.Time { return b.openedAt[j] + b.cfg.Cooldown }

// SlowFactor returns the configured gray-slowness failure threshold.
func (b *Breakers) SlowFactor() float64 { return b.cfg.SlowFactor }

// Allow reports whether a dispatch to server j is admissible now: always
// in the closed state, never in the open state, and in the half-open state
// only while a probe slot is free (such a dispatch must then be registered
// with StartProbe). Allow never mutates state.
func (b *Breakers) Allow(j int) bool {
	switch b.state[j] {
	case Closed:
		return true
	case HalfOpen:
		return b.issued[j] < b.cfg.ProbeCap()
	}
	return false
}

// StartProbe registers a half-open dispatch to server j as a probe. The
// caller checks Allow first; every half-open dispatch is a probe.
func (b *Breakers) StartProbe(j int) {
	b.issued[j]++
	b.inflight[j]++
}

// AbortProbe returns a probe slot that resolved without an outcome (the
// attempt was cancelled, handed off or shed), so the half-open breaker can
// issue a replacement probe instead of waiting forever.
func (b *Breakers) AbortProbe(j int) {
	if b.state[j] != HalfOpen {
		return
	}
	if b.issued[j] > 0 {
		b.issued[j]--
	}
	if b.inflight[j] > 0 {
		b.inflight[j]--
	}
}

// Observe records a normal (non-probe) dispatch outcome on server j and
// reports whether the breaker opened. Outcomes only count toward the
// sliding window in the closed state: in-flight stragglers completing
// against an open or half-open breaker carry no new information.
func (b *Breakers) Observe(j int, failure bool, now core.Time) (opened bool) {
	if b.state[j] != Closed {
		return false
	}
	w := b.cfg.Window
	slot := j*w + b.pos[j]
	if b.count[j] == w {
		if b.ring[slot] {
			b.fails[j]--
		}
	} else {
		b.count[j]++
	}
	b.ring[slot] = failure
	if failure {
		b.fails[j]++
	}
	b.pos[j]++
	if b.pos[j] == w {
		b.pos[j] = 0
	}
	if b.count[j] == w && float64(b.fails[j]) >= b.cfg.FailureThreshold*float64(w) {
		b.open(j, now)
		return true
	}
	return false
}

// ObserveProbe records a probe outcome on server j: success closes the
// breaker (closed=true), failure re-opens it (opened=true). A probe whose
// breaker already left the half-open state (a racing probe closed or
// re-opened it first) feeds the outcome through the normal closed-state
// window instead — and can trip the breaker that way, which also surfaces
// through opened.
func (b *Breakers) ObserveProbe(j int, failure bool, now core.Time) (closed, opened bool) {
	if b.state[j] != HalfOpen {
		if b.inflight[j] > 0 {
			b.inflight[j]--
		}
		return false, b.Observe(j, failure, now)
	}
	b.inflight[j]--
	if failure {
		b.open(j, now)
		return false, true
	}
	b.state[j] = Closed
	b.resetWindow(j)
	return true, false
}

// Tick applies the timed open → half-open transition when server j's
// cooldown has elapsed, reporting whether it fired. The engine calls it
// from the cooldown-expiry event it arms at every open.
func (b *Breakers) Tick(j int, now core.Time) bool {
	if b.state[j] != Open || now < b.OpenUntil(j) {
		return false
	}
	b.state[j] = HalfOpen
	b.issued[j] = 0
	b.inflight[j] = 0
	return true
}

// open trips server j's breaker at now, from closed (window threshold) or
// half-open (probe failure).
func (b *Breakers) open(j int, now core.Time) {
	b.state[j] = Open
	b.openedAt[j] = now
	b.issued[j] = 0
	b.inflight[j] = 0
	b.resetWindow(j)
}

// resetWindow clears server j's outcome ring — a state change resets the
// evidence.
func (b *Breakers) resetWindow(j int) {
	w := b.cfg.Window
	for i := j * w; i < (j+1)*w; i++ {
		b.ring[i] = false
	}
	b.count[j] = 0
	b.fails[j] = 0
	b.pos[j] = 0
}

// Inflight returns server j's outstanding probe count (for tests and the
// fuzzer's invariant checks).
func (b *Breakers) Inflight(j int) int { return b.inflight[j] }

// Issued returns server j's issued-probe count this half-open episode.
func (b *Breakers) Issued(j int) int { return b.issued[j] }

// NaNTime is the "never happened" sentinel used in Span fields.
func NaNTime() core.Time { return core.Time(math.NaN()) }

// resliceZero reslices buf to n zeroed elements, reallocating only when
// capacity is short (the engine arena's helper, duplicated to keep this
// package dependency-light).
func resliceZero[T any](buf []T, n int) []T {
	if cap(buf) < n {
		buf = make([]T, n)
	}
	buf = buf[:n]
	var zero T
	for i := range buf {
		buf[i] = zero
	}
	return buf
}
