// Package resilience holds the metastable-failure protections of the
// unified engine (sim.RunResilient): deterministic seeded jitter on the
// retry backoff, a cluster-wide retry budget, and per-server circuit
// breakers.
//
// The three mechanisms target the retry-storm regime: a mass outage that
// heals leaves synchronized unjittered retries re-saturating the recovered
// servers, so admitted flow time never returns to its bound — the recovery
// spike that setup/warm-up costs make worse (Mäcker et al., PAPERS.md) and
// that per-endpoint capacity limits formalize (Pa–Rajaraman–Stalfa,
// PAPERS.md). Jitter desynchronizes the waves, the budget caps retry
// traffic to a fraction of live admissions, and breakers stop gray or
// flapping servers from absorbing (and losing) work.
//
// Everything here is deterministic and allocation-free in steady state:
// jitter is a hash of (seed, task, attempt), the budget is a float token
// bucket, and Breakers recycles its per-server state through Reset exactly
// like the engine's arena.
package resilience

import (
	"fmt"
	"math"

	"flowsched/internal/core"
)

// JitterMode selects how the exponential backoff delay is randomized.
type JitterMode string

const (
	// JitterNone leaves the deterministic exponential delay untouched.
	JitterNone JitterMode = ""
	// JitterFull draws the delay uniformly from [0, d): maximal
	// desynchronization, at the cost of some immediate retries.
	JitterFull JitterMode = "full"
	// JitterEqual draws from [d/2, d): half the spread of full jitter while
	// keeping a floor of half the nominal delay.
	JitterEqual JitterMode = "equal"
	// JitterDecorrelated ignores the exponential schedule and draws from
	// [base, 3·prev), where prev is the task's previous jittered delay —
	// the AWS "decorrelated jitter" rule, which spreads repeated retries
	// without the synchronized doubling of plain exponential backoff.
	JitterDecorrelated JitterMode = "decorrelated"
)

// maxDelay caps a jittered delay, mirroring the engine's backoff clamp:
// beyond ~2^60 time units a retry is effectively "never", and letting the
// decorrelated recurrence run free would overflow to +Inf.
const maxDelay = core.Time(1 << 60)

// Config enables the resilience layer of sim.RunResilient. A nil Config is
// byte-identical to a plain hedged run; each mechanism is independently
// optional.
type Config struct {
	// Jitter randomizes the retry backoff. Replayable: the delay of a
	// retry is a pure hash of (Seed, task, attempt).
	Jitter JitterMode `json:"jitter,omitempty"`
	// Seed seeds the jitter hash. Two runs with equal seeds retry at
	// identical instants.
	Seed int64 `json:"seed,omitempty"`

	// RetryBudget caps retry traffic at this fraction of first-attempt
	// dispatches: every first attempt refills the token bucket by
	// RetryBudget tokens and every retry costs one. 0 disables the budget.
	// An over-budget retry drops its task with the BudgetDropped
	// disposition — never parked forever.
	RetryBudget float64 `json:"retry_budget,omitempty"`
	// BudgetBurst bounds the token bucket (and is its initial fill), so a
	// quiet period cannot bank an unbounded retry burst. 0 means
	// DefaultBudgetBurst.
	BudgetBurst float64 `json:"budget_burst,omitempty"`

	// Breaker attaches per-server circuit breakers to failover routing.
	Breaker *BreakerConfig `json:"breaker,omitempty"`
}

// DefaultBudgetBurst is the token-bucket bound when BudgetBurst is 0.
const DefaultBudgetBurst = 10.0

// BudgetBurstOrDefault returns the effective token-bucket bound.
func (c *Config) BudgetBurstOrDefault() float64 {
	if c.BudgetBurst > 0 {
		return c.BudgetBurst
	}
	return DefaultBudgetBurst
}

// Validate checks the config. A nil config is valid (the disabled layer).
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	switch c.Jitter {
	case JitterNone, JitterFull, JitterEqual, JitterDecorrelated:
	default:
		return fmt.Errorf("resilience: unknown jitter mode %q (want full, equal or decorrelated)", c.Jitter)
	}
	if math.IsNaN(c.RetryBudget) || c.RetryBudget < 0 || c.RetryBudget > 1 {
		return fmt.Errorf("resilience: retry budget %v outside [0, 1]", c.RetryBudget)
	}
	if math.IsNaN(c.BudgetBurst) || math.IsInf(c.BudgetBurst, 0) || c.BudgetBurst < 0 {
		return fmt.Errorf("resilience: budget burst %v must be a finite non-negative token count", c.BudgetBurst)
	}
	return c.Breaker.Validate()
}

// BreakerConfig parameterizes the per-server circuit breakers: closed →
// open when the failure rate over a sliding outcome window crosses the
// threshold → half-open after a cooldown, admitting a capped number of
// probe dispatches → closed again on probe success (or open on probe
// failure).
type BreakerConfig struct {
	// Window is the sliding outcome window: the breaker trips on the
	// failure rate over the last Window dispatch outcomes (it never trips
	// before the window has filled once).
	Window int `json:"window"`
	// FailureThreshold opens the breaker when failures/Window reaches it.
	FailureThreshold float64 `json:"failure_threshold"`
	// Cooldown is how long an open breaker blocks all dispatches before
	// transitioning to half-open.
	Cooldown core.Time `json:"cooldown"`
	// HalfOpenProbes caps concurrently outstanding probe dispatches in the
	// half-open state. 0 means 1.
	HalfOpenProbes int `json:"half_open_probes,omitempty"`
	// SlowFactor counts a completion as a failure outcome when its
	// observed service time reached SlowFactor × the task's nominal
	// processing time — how a breaker sees a gray-slow server that never
	// crashes. 0 counts only crashes as failures.
	SlowFactor float64 `json:"slow_factor,omitempty"`
}

// ProbeCap returns the effective half-open probe cap.
func (c *BreakerConfig) ProbeCap() int {
	if c.HalfOpenProbes > 0 {
		return c.HalfOpenProbes
	}
	return 1
}

// Validate checks the breaker config; nil is valid (no breakers).
func (c *BreakerConfig) Validate() error {
	if c == nil {
		return nil
	}
	if c.Window < 1 {
		return fmt.Errorf("resilience: breaker window %d must be at least 1", c.Window)
	}
	if math.IsNaN(c.FailureThreshold) || c.FailureThreshold <= 0 || c.FailureThreshold > 1 {
		return fmt.Errorf("resilience: breaker failure threshold %v outside (0, 1]", c.FailureThreshold)
	}
	if math.IsNaN(float64(c.Cooldown)) || math.IsInf(float64(c.Cooldown), 0) || c.Cooldown <= 0 {
		return fmt.Errorf("resilience: breaker cooldown %v must be a finite positive duration", c.Cooldown)
	}
	if c.HalfOpenProbes < 0 {
		return fmt.Errorf("resilience: breaker half-open probe cap %d must be non-negative", c.HalfOpenProbes)
	}
	if math.IsNaN(c.SlowFactor) || math.IsInf(c.SlowFactor, 0) || c.SlowFactor < 0 {
		return fmt.Errorf("resilience: breaker slow factor %v must be finite and non-negative", c.SlowFactor)
	}
	if c.SlowFactor > 0 && c.SlowFactor <= 1 {
		return fmt.Errorf("resilience: breaker slow factor %v must exceed 1 (every on-time completion would count as a failure)", c.SlowFactor)
	}
	return nil
}

// Jitter returns the jittered retry delay. d is the deterministic
// exponential delay for this attempt, base the policy's base backoff and
// prev the task's previous jittered delay (0 on the first retry; only
// decorrelated mode reads it). The draw is a pure hash of (seed, task,
// attempt), so a run replays bit-for-bit from its seed.
func Jitter(mode JitterMode, seed int64, task, attempt int, d, base, prev core.Time) core.Time {
	u := rnd01(seed, task, attempt)
	switch mode {
	case JitterFull:
		return core.Time(float64(d) * u)
	case JitterEqual:
		return d/2 + core.Time(float64(d/2)*u)
	case JitterDecorrelated:
		if prev < base {
			prev = base
		}
		next := base + core.Time(float64(3*prev-base)*u)
		if next >= maxDelay || math.IsInf(float64(next), 0) {
			return maxDelay
		}
		return next
	default:
		return d
	}
}

// rnd01 hashes (seed, task, attempt) into [0, 1) with a SplitMix64
// finalizer — deterministic, stateless and allocation-free.
func rnd01(seed int64, task, attempt int) float64 {
	x := uint64(seed) ^ 0x9e3779b97f4a7c15*uint64(task+1) ^ 0xbf58476d1ce4e5b9*uint64(attempt+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// Budget is the cluster-wide retry token bucket: every first-attempt
// dispatch refills it by the configured fraction, every retry costs one
// token, and the balance is bounded by the burst cap. The zero value is an
// empty bucket; Reset arms it.
type Budget struct {
	fraction float64
	burst    float64
	tokens   float64
}

// Reset arms the bucket with the given refill fraction and burst bound,
// starting full (a cold start right into an outage can still retry).
func (b *Budget) Reset(fraction, burst float64) {
	b.fraction = fraction
	b.burst = burst
	b.tokens = burst
}

// Refill credits one first-attempt dispatch.
func (b *Budget) Refill() {
	b.tokens += b.fraction
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// Take spends one token on a retry; it reports false (and spends nothing)
// when the bucket holds less than a full token — the retry is over budget.
func (b *Budget) Take() bool {
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens returns the current balance (for probes and tests).
func (b *Budget) Tokens() float64 { return b.tokens }
