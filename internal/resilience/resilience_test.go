package resilience

import (
	"math"
	"testing"

	"flowsched/internal/core"
)

func TestJitterDeterministicAndBounded(t *testing.T) {
	const d, base = core.Time(8), core.Time(1)
	for task := 0; task < 50; task++ {
		for attempt := 1; attempt <= 5; attempt++ {
			full := Jitter(JitterFull, 42, task, attempt, d, base, 0)
			if full < 0 || full >= d {
				t.Fatalf("full jitter %v outside [0, %v)", full, d)
			}
			eq := Jitter(JitterEqual, 42, task, attempt, d, base, 0)
			if eq < d/2 || eq >= d {
				t.Fatalf("equal jitter %v outside [%v, %v)", eq, d/2, d)
			}
			prev := core.Time(2)
			dec := Jitter(JitterDecorrelated, 42, task, attempt, d, base, prev)
			if dec < base || dec >= 3*prev {
				t.Fatalf("decorrelated jitter %v outside [%v, %v)", dec, base, 3*prev)
			}
			if none := Jitter(JitterNone, 42, task, attempt, d, base, 0); none != d {
				t.Fatalf("no-jitter delay %v, want the deterministic %v", none, d)
			}
			// Replayable: the same (seed, task, attempt) always draws the
			// same delay.
			if again := Jitter(JitterFull, 42, task, attempt, d, base, 0); again != full {
				t.Fatalf("replay drew %v, first draw was %v", again, full)
			}
		}
	}
	// Distinct seeds must decorrelate: across 50 tasks at least one draw
	// differs (in fact essentially all do).
	same := 0
	for task := 0; task < 50; task++ {
		if Jitter(JitterFull, 1, task, 1, d, base, 0) == Jitter(JitterFull, 2, task, 1, d, base, 0) {
			same++
		}
	}
	if same == 50 {
		t.Fatal("two different seeds drew identical jitter for every task")
	}
}

func TestJitterDecorrelatedClamps(t *testing.T) {
	// A runaway decorrelated recurrence must saturate at maxDelay, never
	// overflow to +Inf.
	prev := core.Time(math.MaxFloat64 / 4)
	for attempt := 1; attempt < 10; attempt++ {
		d := Jitter(JitterDecorrelated, 9, 0, attempt, 1, 1, prev)
		if math.IsInf(float64(d), 0) || math.IsNaN(float64(d)) || d > maxDelay {
			t.Fatalf("attempt %d: delay %v escaped the clamp", attempt, d)
		}
		prev = d
	}
	// prev below base snaps up to base, keeping the draw in [base, 3·base).
	d := Jitter(JitterDecorrelated, 9, 3, 1, 4, 2, 0)
	if d < 2 || d >= 6 {
		t.Fatalf("first decorrelated draw %v outside [base, 3·base) = [2, 6)", d)
	}
}

func TestBudgetTokenBucket(t *testing.T) {
	var b Budget
	b.Reset(0.5, 2)
	if b.Tokens() != 2 {
		t.Fatalf("bucket starts at %v, want full burst 2", b.Tokens())
	}
	if !b.Take() || !b.Take() {
		t.Fatal("a full bucket must grant two retries")
	}
	if b.Take() {
		t.Fatal("an empty bucket granted a retry")
	}
	if b.Tokens() != 0 {
		t.Fatalf("failed Take spent tokens: %v", b.Tokens())
	}
	b.Refill()
	if b.Take() {
		t.Fatal("half a token granted a retry")
	}
	b.Refill()
	if !b.Take() {
		t.Fatal("two refills at fraction 0.5 must bank one retry")
	}
	for i := 0; i < 10; i++ {
		b.Refill()
	}
	if b.Tokens() != 2 {
		t.Fatalf("bucket banked %v tokens past its burst of 2", b.Tokens())
	}
}

func TestConfigValidate(t *testing.T) {
	valid := []*Config{
		nil,
		{},
		{Jitter: JitterFull, Seed: 7},
		{Jitter: JitterEqual, RetryBudget: 0.1, BudgetBurst: 5},
		{Jitter: JitterDecorrelated, RetryBudget: 1},
		{Breaker: &BreakerConfig{Window: 1, FailureThreshold: 1, Cooldown: 1}},
		{Breaker: &BreakerConfig{Window: 20, FailureThreshold: 0.5, Cooldown: 10, HalfOpenProbes: 3, SlowFactor: 4}},
	}
	for _, c := range valid {
		if err := c.Validate(); err != nil {
			t.Errorf("config %+v rejected: %v", c, err)
		}
	}
	invalid := []*Config{
		{Jitter: "bogus"},
		{RetryBudget: -0.1},
		{RetryBudget: 1.5},
		{RetryBudget: math.NaN()},
		{BudgetBurst: -1},
		{BudgetBurst: math.Inf(1)},
		{Breaker: &BreakerConfig{Window: 0, FailureThreshold: 1, Cooldown: 1}},
		{Breaker: &BreakerConfig{Window: 1, FailureThreshold: 0, Cooldown: 1}},
		{Breaker: &BreakerConfig{Window: 1, FailureThreshold: 1.5, Cooldown: 1}},
		{Breaker: &BreakerConfig{Window: 1, FailureThreshold: 1, Cooldown: 0}},
		{Breaker: &BreakerConfig{Window: 1, FailureThreshold: 1, Cooldown: core.Time(math.Inf(1))}},
		{Breaker: &BreakerConfig{Window: 1, FailureThreshold: 1, Cooldown: 1, HalfOpenProbes: -1}},
		// SlowFactor in (0, 1] would flag every on-time completion.
		{Breaker: &BreakerConfig{Window: 1, FailureThreshold: 1, Cooldown: 1, SlowFactor: 0.5}},
		{Breaker: &BreakerConfig{Window: 1, FailureThreshold: 1, Cooldown: 1, SlowFactor: 1}},
	}
	for _, c := range invalid {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted, want rejection", c)
		}
	}
}

func TestBreakerLifecycle(t *testing.T) {
	var b Breakers
	b.Reset(&BreakerConfig{Window: 2, FailureThreshold: 0.5, Cooldown: 5, HalfOpenProbes: 1}, 2)

	// Closed: the window must fill before the breaker can trip.
	if opened := b.Observe(0, true, 1); opened {
		t.Fatal("breaker tripped before its window filled")
	}
	if opened := b.Observe(0, false, 2); !opened {
		t.Fatal("1 failure in a window of 2 at threshold 0.5 must trip")
	}
	if b.State(0) != Open || b.Allow(0) {
		t.Fatalf("state %v allow %v, want open and blocking", b.State(0), b.Allow(0))
	}
	if b.State(1) != Closed || !b.Allow(1) {
		t.Fatal("server 1's breaker is independent and must stay closed")
	}
	if got := b.OpenUntil(0); got != 7 {
		t.Fatalf("open until %v, want openedAt 2 + cooldown 5 = 7", got)
	}

	// Timed transition only fires at the cooldown boundary, only via Tick.
	if b.Tick(0, 6) {
		t.Fatal("Tick fired before the cooldown elapsed")
	}
	if !b.Tick(0, 7) || b.State(0) != HalfOpen {
		t.Fatal("Tick at the cooldown boundary must go half-open")
	}

	// Half-open: one probe slot, then blocked.
	if !b.Allow(0) {
		t.Fatal("half-open breaker must admit a probe")
	}
	b.StartProbe(0)
	if b.Allow(0) {
		t.Fatal("probe cap 1 admitted a second probe")
	}
	if b.Issued(0) != 1 || b.Inflight(0) != 1 {
		t.Fatalf("issued %d inflight %d, want 1/1", b.Issued(0), b.Inflight(0))
	}

	// Probe success closes and resets the evidence window.
	closed, opened := b.ObserveProbe(0, false, 10)
	if !closed || opened || b.State(0) != Closed {
		t.Fatalf("probe success: closed=%v opened=%v state=%v", closed, opened, b.State(0))
	}
	if opened := b.Observe(0, true, 11); opened {
		t.Fatal("the post-close window kept stale outcomes: one failure re-tripped")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	var b Breakers
	b.Reset(&BreakerConfig{Window: 1, FailureThreshold: 1, Cooldown: 3}, 1)
	if !b.Observe(0, true, 1) {
		t.Fatal("window 1 threshold 1: one failure must trip")
	}
	b.Tick(0, 4)
	b.StartProbe(0)
	closed, opened := b.ObserveProbe(0, true, 5)
	if closed || !opened || b.State(0) != Open {
		t.Fatalf("probe failure: closed=%v opened=%v state=%v, want re-open", closed, opened, b.State(0))
	}
	if got := b.OpenUntil(0); got != 8 {
		t.Fatalf("re-open cooldown from %v, want the probe-failure instant 5 + 3 = 8", got-3)
	}
}

func TestBreakerAbortProbeRefundsSlot(t *testing.T) {
	var b Breakers
	b.Reset(&BreakerConfig{Window: 1, FailureThreshold: 1, Cooldown: 1, HalfOpenProbes: 1}, 1)
	b.Observe(0, true, 0)
	b.Tick(0, 1)
	b.StartProbe(0)
	if b.Allow(0) {
		t.Fatal("slot taken, Allow must block")
	}
	b.AbortProbe(0)
	if !b.Allow(0) || b.Issued(0) != 0 || b.Inflight(0) != 0 {
		t.Fatal("aborted probe did not refund its slot")
	}
	// Aborting against a non-half-open breaker is a no-op, not an underflow.
	b.StartProbe(0)
	b.ObserveProbe(0, true, 2) // re-opens
	b.AbortProbe(0)
	if b.Issued(0) != 0 || b.Inflight(0) != 0 {
		t.Fatal("abort after re-open corrupted the counters")
	}
}

func TestBreakerStragglerOutcomes(t *testing.T) {
	var b Breakers
	b.Reset(&BreakerConfig{Window: 2, FailureThreshold: 1, Cooldown: 10}, 1)
	b.Observe(0, true, 0)
	b.Observe(0, true, 1) // trips
	if b.State(0) != Open {
		t.Fatal("setup: breaker should be open")
	}
	// A straggler completing against an open breaker carries no information.
	if b.Observe(0, false, 2); b.State(0) != Open {
		t.Fatal("open-state observe mutated the breaker")
	}
	// A probe straggler whose breaker already left half-open feeds the
	// normal window instead: two failures re-trip from the closed state.
	b.Tick(0, 11)
	b.StartProbe(0)
	b.ObserveProbe(0, false, 12) // closes
	closed, opened := b.ObserveProbe(0, true, 13)
	if closed || opened {
		t.Fatal("first straggler failure filled only half the window")
	}
	_, opened = b.ObserveProbe(0, true, 14)
	if !opened || b.State(0) != Open {
		t.Fatal("straggler probe outcomes must flow through the closed-state window")
	}
}

// FuzzBreakerStateMachine drives two identical breaker banks through an
// arbitrary op stream and checks, after every op, that the state machine
// stays legal (transitions only via the op that owns them, probe counters
// within the cap, Allow consistent with the state) and deterministic (both
// banks agree on every observable).
func FuzzBreakerStateMachine(f *testing.F) {
	f.Add(int64(0x010101), []byte{0x12, 0x23, 0x34, 0x45, 0x56})
	f.Add(int64(0x050302), []byte("open-close-open"))
	f.Add(int64(0x020107), []byte{0x03, 0x03, 0x21, 0x42, 0x1b, 0x03, 0x2a, 0x15})
	f.Add(int64(-1), []byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa})
	f.Fuzz(func(t *testing.T, knobs int64, ops []byte) {
		const m = 3
		cfg := &BreakerConfig{
			Window:           1 + int(uint64(knobs)%5),
			FailureThreshold: []float64{0.25, 0.5, 1}[uint64(knobs>>8)%3],
			Cooldown:         core.Time(1 + uint64(knobs>>16)%7),
			HalfOpenProbes:   int(uint64(knobs>>24) % 4),
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("constructed config invalid: %v", err)
		}
		var a, b Breakers
		a.Reset(cfg, m)
		b.Reset(cfg, m)
		outstanding := [m]int{} // probes we started and have not yet resolved
		now := core.Time(0)
		for i, op := range ops {
			j := int(op) % m
			now += core.Time(op % 3)
			kind := (op / 4) % 6
			prev := a.State(j)
			started := false
			step := func(bk *Breakers) (State, int, int, bool) {
				fired := false
				switch kind {
				case 0:
					_ = bk.Allow(j)
				case 1:
					if bk.State(j) == HalfOpen && bk.Allow(j) {
						bk.StartProbe(j)
						started = true
					}
				case 2:
					bk.Observe(j, op&0x80 != 0, now)
				case 3:
					// Resolve only probes this caller actually started —
					// including stragglers whose breaker has since moved on.
					if outstanding[j] > 0 {
						bk.ObserveProbe(j, op&0x80 != 0, now)
					}
				case 4:
					fired = bk.Tick(j, now)
				case 5:
					if outstanding[j] > 0 {
						bk.AbortProbe(j)
					}
				}
				return bk.State(j), bk.Issued(j), bk.Inflight(j), fired
			}
			s1, i1, f1, t1 := step(&a)
			started1 := started
			started = false
			s2, i2, f2, t2 := step(&b)
			if s1 != s2 || i1 != i2 || f1 != f2 || t1 != t2 || started1 != started {
				t.Fatalf("op %d: banks diverged: (%v,%d,%d,%v,%v) vs (%v,%d,%d,%v,%v)",
					i, s1, i1, f1, t1, started1, s2, i2, f2, t2, started)
			}
			if started1 {
				outstanding[j]++
			}
			if (kind == 3 || kind == 5) && outstanding[j] > 0 {
				outstanding[j]--
			}

			// Invariants.
			if s1.String() == "invalid" {
				t.Fatalf("op %d: invalid state %d", i, s1)
			}
			switch s1 {
			case Closed:
				if !a.Allow(j) {
					t.Fatalf("op %d: closed breaker blocked a dispatch", i)
				}
			case Open:
				if a.Allow(j) {
					t.Fatalf("op %d: open breaker admitted a dispatch", i)
				}
			case HalfOpen:
				if i1 < 0 || f1 < 0 || f1 > i1 || i1 > cfg.ProbeCap() {
					t.Fatalf("op %d: probe counters issued=%d inflight=%d cap=%d", i, i1, f1, cfg.ProbeCap())
				}
				if a.Allow(j) != (i1 < cfg.ProbeCap()) {
					t.Fatalf("op %d: half-open Allow inconsistent with issued=%d", i, i1)
				}
			}
			// Transition legality: Open is left only by Tick, and Tick only
			// fires at or after the cooldown boundary.
			if prev == Open && s1 != Open && !t1 {
				t.Fatalf("op %d: open → %v without a Tick", i, s1)
			}
			if t1 && now < a.openedAt[j]+cfg.Cooldown {
				t.Fatalf("op %d: Tick fired before the cooldown elapsed", i)
			}
			if prev == Closed && s1 == HalfOpen {
				t.Fatalf("op %d: closed → half-open is not a legal transition", i)
			}
			if (kind == 0 || kind == 1 || kind == 5) && prev != s1 {
				t.Fatalf("op %d: op kind %d mutated the state %v → %v", i, kind, prev, s1)
			}
		}
	})
}
